#include <gtest/gtest.h>

#include <cmath>

#include "numeric/solver.hpp"
#include "order/graph.hpp"
#include "order/multilevel.hpp"
#include "order/nested_dissection.hpp"
#include "sparse/generators.hpp"
#include "support/rng.hpp"
#include "symbolic/etree.hpp"

namespace slu3d {
namespace {

void expect_edges_respect_tree(const CsrMatrix& A, const SeparatorTree& tree) {
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm()).symmetrized_pattern();
  std::vector<int> owner(static_cast<std::size_t>(tree.n()), -1);
  for (int v = 0; v < tree.n_nodes(); ++v) {
    const auto& nd = tree.node(v);
    for (index_t c = nd.sep_first; c < nd.sep_last; ++c)
      owner[static_cast<std::size_t>(c)] = v;
  }
  auto is_anc = [&](int a, int b) {
    return tree.node(a).subtree_first <= tree.node(b).subtree_first &&
           tree.node(b).sep_last <= tree.node(a).sep_last;
  };
  for (index_t i = 0; i < Ap.n_rows(); ++i)
    for (index_t j : Ap.row_cols(i)) {
      if (i == j) continue;
      const int a = owner[static_cast<std::size_t>(i)];
      const int b = owner[static_cast<std::size_t>(j)];
      ASSERT_TRUE(is_anc(a, b) || is_anc(b, a));
    }
}

TEST(MultilevelBisect, BalancedCutOnGrid) {
  const GridGeometry g{24, 24, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const auto adj = order_detail::build_adjacency(A);
  std::vector<index_t> verts(static_cast<std::size_t>(A.n_rows()));
  for (std::size_t i = 0; i < verts.size(); ++i)
    verts[i] = static_cast<index_t>(i);
  const auto bis = order_detail::multilevel_bisect(adj, verts, 7);
  ASSERT_TRUE(bis.has_value());
  EXPECT_EQ(bis->a.size() + bis->b.size(), verts.size());
  // Balance within the FM constraint (each side >= 1/3).
  EXPECT_GE(bis->a.size(), verts.size() / 3);
  EXPECT_GE(bis->b.size(), verts.size() / 3);
  // Cut of a 24x24 grid bisection should be close to one grid line.
  EXPECT_LE(bis->cut_weight, 3 * 24);
}

TEST(MultilevelBisect, TinyGraphs) {
  CooMatrix coo(2, 2);
  coo.add(0, 1, -1);
  coo.add(1, 0, -1);
  coo.add(0, 0, 2);
  coo.add(1, 1, 2);
  const CsrMatrix A = CsrMatrix::from_coo(coo);
  const auto adj = order_detail::build_adjacency(A);
  const std::vector<index_t> verts{0, 1};
  const auto bis = order_detail::multilevel_bisect(adj, verts, 1);
  ASSERT_TRUE(bis.has_value());
  EXPECT_EQ(bis->a.size(), 1u);
  EXPECT_EQ(bis->b.size(), 1u);
}

class MultilevelNdOnSuite : public ::testing::TestWithParam<int> {};

TEST_P(MultilevelNdOnSuite, ValidTreeAndSolves) {
  const auto suite = paper_test_suite(0);
  const auto& t = suite[static_cast<std::size_t>(GetParam())];
  NdOptions opt;
  opt.leaf_size = 8;
  opt.algorithm = NdAlgorithm::Multilevel;
  const SeparatorTree tree = nested_dissection(t.A, opt);
  EXPECT_TRUE(is_permutation(tree.perm()));
  expect_edges_respect_tree(t.A, tree);

  SolverOptions sopt;
  sopt.nd = opt;
  const SparseLuSolver solver(t.A, sopt);
  const auto n = static_cast<std::size_t>(t.A.n_rows());
  Rng rng(91);
  std::vector<real_t> xref(n), b(n), x(n);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  t.A.spmv(xref, b);
  const auto rep = solver.solve(b, x);
  EXPECT_LT(rep.final_residual_norm, 1e-12) << t.name;
}

INSTANTIATE_TEST_SUITE_P(AllMatrices, MultilevelNdOnSuite,
                         ::testing::Range(0, 10), [](const auto& pi) {
                           return paper_test_suite(0)[static_cast<std::size_t>(pi.param)].name;
                         });

TEST(MultilevelNd, CompetitiveFillOnIrregularGraph) {
  // On the circuit-class graph (irregular), the multilevel ordering should
  // be at least in the same ballpark as level-set ND — typically better.
  const GridGeometry g{40, 40, 1};
  const CsrMatrix A = circuit2d(g, g.n() / 8, 11);

  NdOptions lvl;
  lvl.leaf_size = 16;
  NdOptions ml = lvl;
  ml.algorithm = NdAlgorithm::Multilevel;
  const offset_t fill_lvl =
      scalar_factor_nnz(A.permuted_symmetric(nested_dissection(A, lvl).perm()));
  const offset_t fill_ml =
      scalar_factor_nnz(A.permuted_symmetric(nested_dissection(A, ml).perm()));
  EXPECT_LT(fill_ml, fill_lvl * 3 / 2);
}

TEST(MultilevelNd, DeterministicAcrossRuns) {
  const GridGeometry g{16, 16, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  NdOptions opt;
  opt.algorithm = NdAlgorithm::Multilevel;
  const SeparatorTree t1 = nested_dissection(A, opt);
  const SeparatorTree t2 = nested_dissection(A, opt);
  ASSERT_EQ(t1.perm().size(), t2.perm().size());
  for (std::size_t i = 0; i < t1.perm().size(); ++i)
    EXPECT_EQ(t1.perm()[i], t2.perm()[i]);
}

}  // namespace
}  // namespace slu3d
