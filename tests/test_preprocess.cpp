#include <gtest/gtest.h>

#include <cmath>

#include "numeric/solver.hpp"
#include "order/diagonal_matching.hpp"
#include "sparse/equilibrate.hpp"
#include "sparse/generators.hpp"
#include "support/rng.hpp"

namespace slu3d {
namespace {

CsrMatrix badly_scaled_grid(index_t side) {
  // Grid Laplacian with rows/cols scaled by wildly varying powers of 10.
  const GridGeometry g{side, side, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  CooMatrix coo(A.n_rows(), A.n_cols());
  Rng rng(5);
  std::vector<real_t> scale(static_cast<std::size_t>(A.n_rows()));
  for (auto& s : scale) s = std::pow(10.0, rng.uniform(-6, 6));
  for (index_t r = 0; r < A.n_rows(); ++r) {
    const auto cols = A.row_cols(r);
    const auto vals = A.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k)
      coo.add(r, cols[k],
              vals[k] * scale[static_cast<std::size_t>(r)] *
                  scale[static_cast<std::size_t>(cols[k])]);
  }
  return CsrMatrix::from_coo(coo);
}

TEST(Equilibrate, NormalizesRowAndColumnMagnitudes) {
  const CsrMatrix A = badly_scaled_grid(8);
  const Equilibration eq = compute_equilibration(A);
  EXPECT_LT(eq.row_ratio, 1e-3);  // the input really is badly scaled
  const CsrMatrix B = apply_equilibration(A, eq);
  for (index_t r = 0; r < B.n_rows(); ++r) {
    real_t mx = 0;
    for (real_t v : B.row_vals(r)) mx = std::max(mx, std::abs(v));
    EXPECT_GT(mx, 0.05);
    EXPECT_LE(mx, 1.0 + 1e-12);
  }
  const CsrMatrix Bt = B.transposed();
  for (index_t c = 0; c < Bt.n_rows(); ++c) {
    real_t mx = 0;
    for (real_t v : Bt.row_vals(c)) mx = std::max(mx, std::abs(v));
    EXPECT_GT(mx, 0.05);
    EXPECT_LE(mx, 1.0 + 1e-12);
  }
}

TEST(Equilibrate, RoundTripTransformsSolveTheOriginalSystem) {
  const CsrMatrix A = badly_scaled_grid(6);
  const Equilibration eq = compute_equilibration(A);
  const CsrMatrix B = apply_equilibration(A, eq);
  // Check B = R A C entry-wise.
  for (index_t r = 0; r < A.n_rows(); ++r) {
    const auto cols = A.row_cols(r);
    const auto vals = A.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k)
      EXPECT_NEAR(B.at(r, cols[k]),
                  vals[k] * eq.row_scale[static_cast<std::size_t>(r)] *
                      eq.col_scale[static_cast<std::size_t>(cols[k])],
                  1e-14);
  }
}

TEST(Equilibrate, RejectsZeroRow) {
  CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0);  // row 1 is empty
  const CsrMatrix A = CsrMatrix::from_coo(coo);
  EXPECT_THROW(compute_equilibration(A), Error);
}

TEST(DiagonalMatching, DetectsExistingDiagonal) {
  const GridGeometry g{5, 5, 1};
  EXPECT_TRUE(has_zero_free_diagonal(grid2d_laplacian(g, Stencil2D::FivePoint)));
}

TEST(DiagonalMatching, RestoresShuffledDiagonal) {
  // Row-shuffle a grid matrix so the diagonal is gone, then recover it.
  const GridGeometry g{7, 6, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  std::vector<index_t> shuffle(static_cast<std::size_t>(A.n_rows()));
  for (std::size_t i = 0; i < shuffle.size(); ++i)
    shuffle[i] = static_cast<index_t>((i + 11) % shuffle.size());
  const CsrMatrix S = permute_rows(A, shuffle);
  EXPECT_FALSE(has_zero_free_diagonal(S));

  const auto rp = zero_free_diagonal_permutation(S);
  ASSERT_TRUE(rp.has_value());
  EXPECT_TRUE(is_permutation(*rp));
  EXPECT_TRUE(has_zero_free_diagonal(permute_rows(S, *rp)));
}

TEST(DiagonalMatching, ReportsStructuralSingularity) {
  // Two rows share the only nonzero column: no perfect matching exists.
  CooMatrix coo(3, 3);
  coo.add(0, 1, 1.0);
  coo.add(1, 1, 1.0);
  coo.add(2, 2, 1.0);
  EXPECT_FALSE(zero_free_diagonal_permutation(CsrMatrix::from_coo(coo)).has_value());
}

TEST(DiagonalMatching, GreedyPrefersLargeEntries) {
  // With free choice, the matching should put the big entries on the
  // diagonal (bottleneck-style behaviour via the greedy seed).
  CooMatrix coo(2, 2);
  coo.add(0, 0, 100.0);
  coo.add(0, 1, 0.1);
  coo.add(1, 0, 0.1);
  coo.add(1, 1, 100.0);
  const auto rp = zero_free_diagonal_permutation(CsrMatrix::from_coo(coo));
  ASSERT_TRUE(rp.has_value());
  EXPECT_EQ((*rp)[0], 0);
  EXPECT_EQ((*rp)[1], 1);
}

TEST(Solver, EquilibrationRescuesBadlyScaledSystem) {
  const CsrMatrix A = badly_scaled_grid(10);
  const auto n = static_cast<std::size_t>(A.n_rows());
  Rng rng(17);
  std::vector<real_t> xref(n), b(n), x(n);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  A.spmv(xref, b);

  SolverOptions opt;
  opt.equilibrate = true;
  opt.refinement_steps = 2;
  const SparseLuSolver solver(A, opt);
  const auto rep = solver.solve(b, x);
  EXPECT_LT(rep.final_residual_norm, 1e-12);
  // The scaling spans 12 orders of magnitude, so the *forward* error is
  // condition-limited; the residual above is the real acceptance test.
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-3);
}

TEST(Solver, FixesStructurallyZeroDiagonal) {
  // A shuffled grid system has structural zeros on the diagonal; the
  // matching step must restore solvability under static pivoting.
  const GridGeometry g{8, 8, 1};
  const CsrMatrix A0 = grid2d_laplacian(g, Stencil2D::FivePoint);
  std::vector<index_t> shuffle(static_cast<std::size_t>(A0.n_rows()));
  for (std::size_t i = 0; i < shuffle.size(); ++i)
    shuffle[i] = static_cast<index_t>((i + 7) % shuffle.size());
  const CsrMatrix A = permute_rows(A0, shuffle);
  ASSERT_FALSE(has_zero_free_diagonal(A));

  const auto n = static_cast<std::size_t>(A.n_rows());
  Rng rng(23);
  std::vector<real_t> xref(n), b(n), x(n);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  A.spmv(xref, b);

  SolverOptions opt;
  opt.refinement_steps = 3;
  const SparseLuSolver solver(A, opt);
  const auto rep = solver.solve(b, x);
  EXPECT_LT(rep.final_residual_norm, 1e-10);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-5);
}

TEST(Solver, CombinedEquilibrationAndMatching) {
  const CsrMatrix A0 = badly_scaled_grid(8);
  std::vector<index_t> shuffle(static_cast<std::size_t>(A0.n_rows()));
  for (std::size_t i = 0; i < shuffle.size(); ++i)
    shuffle[i] = static_cast<index_t>((i + 13) % shuffle.size());
  const CsrMatrix A = permute_rows(A0, shuffle);

  const auto n = static_cast<std::size_t>(A.n_rows());
  Rng rng(29);
  std::vector<real_t> xref(n), b(n), x(n);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  A.spmv(xref, b);

  SolverOptions opt;
  opt.equilibrate = true;
  opt.refinement_steps = 3;
  const SparseLuSolver solver(A, opt);
  const auto rep = solver.solve(b, x);
  EXPECT_LT(rep.final_residual_norm, 1e-10);
}

}  // namespace
}  // namespace slu3d
