#include <gtest/gtest.h>

#include <cmath>
#include <mutex>
#include <numeric>

#include "lu2d/factor2d.hpp"
#include "numeric/seq_lu.hpp"
#include "order/nested_dissection.hpp"
#include "sparse/generators.hpp"
#include "support/rng.hpp"

namespace slu3d {
namespace {

using sim::CommPlane;
using sim::MachineModel;
using sim::ProcessGrid2D;
using sim::RunResult;
using sim::run_ranks;

const MachineModel kModel{};

/// Factorizes `A` on a Px x Py grid and returns the gathered factors,
/// checked entry-wise against the sequential factorization.
void check_2d_matches_sequential(const CsrMatrix& A, const SeparatorTree& tree,
                                 int Px, int Py, int lookahead) {
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());

  SupernodalMatrix ref(bs);
  ref.fill_from(Ap);
  factorize_sequential(ref);

  SupernodalMatrix gathered(bs);  // filled on rank 0 below
  std::mutex mu;
  run_ranks(Px * Py, kModel, [&](sim::Comm& world) {
    auto grid = ProcessGrid2D::create(world, Px, Py);
    Dist2dFactors F(bs, Px, Py, grid.px(), grid.py());
    F.fill_from(Ap);
    std::vector<int> all(static_cast<std::size_t>(bs.n_snodes()));
    std::iota(all.begin(), all.end(), 0);
    Lu2dOptions opt;
    opt.lookahead = lookahead;
    factorize_2d(F, grid, all, opt);
    auto full = F.gather_to_root(grid);
    if (full.has_value()) {
      const std::lock_guard<std::mutex> lock(mu);
      gathered = std::move(*full);
    }
  });

  for (index_t i = 0; i < bs.n(); ++i)
    for (index_t j = 0; j <= i; ++j) {
      ASSERT_NEAR(gathered.l_entry(i, j), ref.l_entry(i, j), 1e-11)
          << "L(" << i << "," << j << ") Px=" << Px << " Py=" << Py;
      ASSERT_NEAR(gathered.u_entry(j, i), ref.u_entry(j, i), 1e-11)
          << "U(" << j << "," << i << ")";
    }
}

struct GridCase {
  int Px, Py, lookahead;
};

class Lu2dGrids : public ::testing::TestWithParam<GridCase> {};

TEST_P(Lu2dGrids, MatchesSequentialOn2dGrid) {
  const auto [Px, Py, la] = GetParam();
  const GridGeometry g{10, 10, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = nested_dissection(A, {.leaf_size = 8});
  check_2d_matches_sequential(A, tree, Px, Py, la);
}

INSTANTIATE_TEST_SUITE_P(
    GridShapes, Lu2dGrids,
    ::testing::Values(GridCase{1, 1, 0}, GridCase{1, 2, 0}, GridCase{2, 1, 8},
                      GridCase{2, 2, 0}, GridCase{2, 2, 8}, GridCase{2, 3, 4},
                      GridCase{3, 2, 8}, GridCase{4, 2, 16}),
    [](const auto& pi) {
      return "Px" + std::to_string(pi.param.Px) + "Py" +
             std::to_string(pi.param.Py) + "La" + std::to_string(pi.param.lookahead);
    });

TEST(Lu2d, MatchesSequentialOn3dMatrix) {
  const GridGeometry g{4, 4, 4};
  const CsrMatrix A = grid3d_laplacian(g, Stencil3D::SevenPoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 8});
  check_2d_matches_sequential(A, tree, 2, 2, 8);
}

TEST(Lu2d, MatchesSequentialOnNonsymmetricValues) {
  const GridGeometry g{8, 6, 1};
  const CsrMatrix A = grid2d_convection_diffusion(g, 0.5);
  const SeparatorTree tree = nested_dissection(A, {.leaf_size = 6});
  check_2d_matches_sequential(A, tree, 2, 2, 4);
}

TEST(Lu2d, SolvesViaGatheredFactors) {
  const GridGeometry g{12, 12, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 16});
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  const auto pinv = invert_permutation(tree.perm());

  Rng rng(3);
  const auto n = static_cast<std::size_t>(A.n_rows());
  std::vector<real_t> xref(n), b(n);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  A.spmv(xref, b);

  std::vector<real_t> x(n);
  std::mutex mu;
  run_ranks(4, kModel, [&](sim::Comm& world) {
    auto grid = ProcessGrid2D::create(world, 2, 2);
    Dist2dFactors F(bs, 2, 2, grid.px(), grid.py());
    F.fill_from(Ap);
    std::vector<int> all(static_cast<std::size_t>(bs.n_snodes()));
    std::iota(all.begin(), all.end(), 0);
    factorize_2d(F, grid, all, {});
    auto full = F.gather_to_root(grid);
    if (full.has_value()) {
      std::vector<real_t> pb(n);
      for (std::size_t i = 0; i < n; ++i)
        pb[static_cast<std::size_t>(pinv[i])] = b[i];
      solve_factored(*full, pb);
      const std::lock_guard<std::mutex> lock(mu);
      for (std::size_t i = 0; i < n; ++i) x[i] = pb[static_cast<std::size_t>(pinv[i])];
    }
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-8);
}

TEST(Lu2d, CommunicationDropsWithBiggerGridForFixedWork) {
  // More processes => less per-process communication volume (Eq. 2 trend).
  const GridGeometry g{20, 20, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 16});
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());

  auto run = [&](int Px, int Py) {
    return run_ranks(Px * Py, kModel, [&](sim::Comm& world) {
      auto grid = ProcessGrid2D::create(world, Px, Py);
      Dist2dFactors F(bs, Px, Py, grid.px(), grid.py());
      F.fill_from(Ap);
      std::vector<int> all(static_cast<std::size_t>(bs.n_snodes()));
      std::iota(all.begin(), all.end(), 0);
      factorize_2d(F, grid, all, {});
    });
  };
  const RunResult r2 = run(2, 2);
  const RunResult r4 = run(4, 4);
  EXPECT_GT(r2.max_bytes_received(CommPlane::XY), 0);
  // Per-process volume shrinks roughly like 1/sqrt(P): allow slack.
  EXPECT_LT(r4.max_bytes_received(CommPlane::XY),
            r2.max_bytes_received(CommPlane::XY));
  // No Z-plane traffic in a pure 2D run.
  EXPECT_EQ(r2.max_bytes_sent(CommPlane::Z), 0);
}

TEST(Lu2d, LookaheadDoesNotChangeResultButHelpsClock) {
  const GridGeometry g{14, 14, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 8});
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());

  auto run = [&](int lookahead) {
    return run_ranks(4, kModel, [&](sim::Comm& world) {
      auto grid = ProcessGrid2D::create(world, 2, 2);
      Dist2dFactors F(bs, 2, 2, grid.px(), grid.py());
      F.fill_from(Ap);
      std::vector<int> all(static_cast<std::size_t>(bs.n_snodes()));
      std::iota(all.begin(), all.end(), 0);
      Lu2dOptions opt;
      opt.lookahead = lookahead;
      factorize_2d(F, grid, all, opt);
    });
  };
  const double t0 = run(0).max_clock();
  const double t8 = run(8).max_clock();
  EXPECT_GT(t0, 0.0);
  // Pipelining must never hurt the modelled critical path.
  EXPECT_LE(t8, t0 * 1.0 + 1e-12);
}

}  // namespace
}  // namespace slu3d
