// Tier-1 tests for the sharded SolverFleet front end: affinity routing
// must match single-shard hit rates (round-robin measurably worse),
// coalesced same-pattern requests must run as ONE batched solve_stream
// with results bitwise identical to independent solves, bounded queues
// must redirect and shed under saturation, and cache-warm migration must
// move only the symbolic payload — never the matrix or numeric factors.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "fleet/solver_fleet.hpp"
#include "sparse/generators.hpp"
#include "support/rng.hpp"

namespace slu3d {
namespace {

using service::FleetOptions;
using service::FleetRequest;
using service::FleetResponse;
using service::FleetStats;
using service::RequestStatus;
using service::RoutingPolicy;
using service::ServiceOptions;
using service::ServiceStats;
using service::SolverFleet;
using service::SolverService;

ServiceOptions fleet_grid_options() {
  ServiceOptions o;
  o.Px = 2;
  o.Py = 2;
  o.Pz = 2;
  o.nd.leaf_size = 8;
  return o;
}

std::vector<real_t> random_panel(std::size_t n, index_t nrhs,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<real_t> b(n * static_cast<std::size_t>(nrhs));
  for (auto& v : b) v = rng.uniform(-1, 1);
  return b;
}

/// Owns the b/x storage a FleetRequest spans point into (the fleet's
/// contract: storage outlives the drain).
struct Job {
  std::shared_ptr<const CsrMatrix> A;
  std::vector<real_t> b;
  std::vector<real_t> x;
  index_t nrhs = 1;

  Job(std::shared_ptr<const CsrMatrix> mat, index_t cols, std::uint64_t seed)
      : A(std::move(mat)),
        b(random_panel(static_cast<std::size_t>(A->n_rows()), cols, seed)),
        x(b.size()),
        nrhs(cols) {}

  FleetRequest request(std::uint64_t tenant, std::uint64_t version = 0) {
    return FleetRequest{tenant, A, version, b, x, nrhs};
  }
};

double hit_rate(const SolverFleet& fleet) {
  const ServiceStats t = fleet.service_totals();
  const double hot = static_cast<double>(t.cache_hits) +
                     static_cast<double>(fleet.stats().activations);
  return hot / (hot + static_cast<double>(t.analyses));
}

/// Six distinct patterns cycling for `rounds` rounds; arrivals are spaced
/// wide so every batch dispatches before the next arrival (pure routing,
/// no queueing effects). Returns the fleet's end-state hit rate.
double run_pattern_cycle(int shards, RoutingPolicy routing, int rounds) {
  std::vector<std::shared_ptr<const CsrMatrix>> mats;
  mats.push_back(std::make_shared<CsrMatrix>(
      grid2d_laplacian(GridGeometry{10, 10, 1}, Stencil2D::FivePoint)));
  mats.push_back(std::make_shared<CsrMatrix>(
      grid2d_laplacian(GridGeometry{9, 10, 1}, Stencil2D::FivePoint)));
  mats.push_back(std::make_shared<CsrMatrix>(
      grid2d_laplacian(GridGeometry{10, 9, 1}, Stencil2D::FivePoint)));
  mats.push_back(std::make_shared<CsrMatrix>(
      grid2d_laplacian(GridGeometry{11, 10, 1}, Stencil2D::FivePoint)));
  mats.push_back(std::make_shared<CsrMatrix>(
      grid2d_laplacian(GridGeometry{10, 11, 1}, Stencil2D::FivePoint)));
  mats.push_back(std::make_shared<CsrMatrix>(
      grid2d_laplacian(GridGeometry{9, 9, 1}, Stencil2D::NinePoint)));

  FleetOptions fo;
  fo.shards = shards;
  fo.service = fleet_grid_options();
  fo.routing = routing;
  SolverFleet fleet(fo);

  std::vector<Job> jobs;
  jobs.reserve(mats.size() * static_cast<std::size_t>(rounds));
  double t = 0;
  for (int r = 0; r < rounds; ++r) {
    for (std::size_t p = 0; p < mats.size(); ++p) {
      jobs.emplace_back(mats[p], 1, 100 * static_cast<std::uint64_t>(r) + p);
      fleet.submit(jobs.back().request(/*tenant=*/p), t);
      t += 1.0;  // far longer than any simulated factor+solve
    }
  }
  const std::vector<FleetResponse> rs = fleet.drain();
  EXPECT_EQ(rs.size(), mats.size() * static_cast<std::size_t>(rounds));
  for (const FleetResponse& r : rs) {
    EXPECT_EQ(r.status, RequestStatus::Done);
    EXPECT_LT(r.solve.residual, 1e-12);
  }
  EXPECT_EQ(fleet.stats().shed, 0);
  return hit_rate(fleet);
}

TEST(SolverFleet, AffinityMatchesSingleShardAndBeatsRoundRobin) {
  // Acceptance criterion: at 4 shards, affinity routing's hit rate stays
  // within 5% of a single shard's, while round-robin is measurably worse
  // (each pattern's requests alternate between two shards, so the fleet
  // analyzes every pattern twice).
  const int rounds = 6;
  const double single = run_pattern_cycle(1, RoutingPolicy::Affinity, rounds);
  const double affinity4 =
      run_pattern_cycle(4, RoutingPolicy::Affinity, rounds);
  const double rr4 = run_pattern_cycle(4, RoutingPolicy::RoundRobin, rounds);

  EXPECT_GT(single, 0.8);
  EXPECT_NEAR(affinity4, single, 0.05);
  EXPECT_GT(affinity4, rr4 + 0.05)
      << "affinity " << affinity4 << " vs round-robin " << rr4;
}

TEST(SolverFleet, CoalescedBatchMatchesIndependentSolvesBitwise) {
  // Acceptance criterion: K same-(pattern, values) requests inside one
  // coalescing window run as ONE batched solve_stream dispatch, and every
  // request's solution is bitwise identical to an independent solve.
  const auto A = std::make_shared<const CsrMatrix>(
      grid2d_laplacian(GridGeometry{10, 10, 1}, Stencil2D::FivePoint));

  FleetOptions fo;
  fo.shards = 1;
  fo.service = fleet_grid_options();
  fo.coalesce_window = 5.0;
  SolverFleet fleet(fo);

  std::vector<Job> jobs;
  jobs.emplace_back(A, 1, 11);
  jobs.emplace_back(A, 2, 12);  // mixed panel widths in one batch
  jobs.emplace_back(A, 1, 13);
  jobs.emplace_back(A, 3, 14);
  for (std::size_t k = 0; k < jobs.size(); ++k)
    fleet.submit(jobs[k].request(/*tenant=*/k), static_cast<double>(k));

  const std::vector<FleetResponse> rs = fleet.drain();
  ASSERT_EQ(rs.size(), 4u);
  EXPECT_EQ(fleet.stats().batches, 1);
  EXPECT_EQ(fleet.stats().coalesced, 3);
  EXPECT_EQ(fleet.service_totals().refactorizations, 1);
  for (std::size_t k = 0; k < rs.size(); ++k) {
    EXPECT_EQ(rs[k].id, k);
    EXPECT_EQ(rs[k].status, RequestStatus::Done);
    EXPECT_EQ(rs[k].shard, 0);
    EXPECT_EQ(rs[k].coalesced, k > 0);
    EXPECT_LT(rs[k].solve.residual, 1e-12);
    EXPECT_GE(rs[k].latency(), 0);
  }
  // Members of one batch complete in sequence on the shared shard.
  for (std::size_t k = 1; k < rs.size(); ++k)
    EXPECT_GT(rs[k].completion, rs[k - 1].completion);

  // Independent reference: a fresh standalone service (same configuration
  // and tag base as shard 0) solving each request separately.
  SolverService ref(fleet_grid_options());
  ref.factor(*A);
  for (Job& j : jobs) {
    std::vector<real_t> y(j.b.size());
    ref.solve({j.b, y, j.nrhs});
    for (std::size_t i = 0; i < y.size(); ++i)
      EXPECT_EQ(j.x[i], y[i]) << "component " << i;
  }
}

TEST(SolverFleet, DistinctValuesVersionsNeverCoalesce) {
  const auto A = std::make_shared<const CsrMatrix>(
      grid2d_laplacian(GridGeometry{9, 10, 1}, Stencil2D::FivePoint));
  FleetOptions fo;
  fo.shards = 1;
  fo.service = fleet_grid_options();
  fo.coalesce_window = 100.0;
  SolverFleet fleet(fo);

  std::vector<Job> jobs;
  for (std::uint64_t k = 0; k < 3; ++k) jobs.emplace_back(A, 1, 20 + k);
  for (std::size_t k = 0; k < jobs.size(); ++k)
    fleet.submit(jobs[k].request(/*tenant=*/0, /*version=*/k),
                 static_cast<double>(k));

  const std::vector<FleetResponse> rs = fleet.drain();
  ASSERT_EQ(rs.size(), 3u);
  EXPECT_EQ(fleet.stats().batches, 3);   // one per values version
  EXPECT_EQ(fleet.stats().coalesced, 0);
  for (const FleetResponse& r : rs) {
    EXPECT_EQ(r.status, RequestStatus::Done);
    EXPECT_FALSE(r.coalesced);
  }
}

TEST(SolverFleet, BoundedQueuesRedirectThenShedWithTenantAccounting) {
  // Admission control: open windows hold the queue, so four distinct
  // values-versions against queue_depth 2 on one shard give two admitted
  // requests and two explicit sheds (no silent drops, no unbounded queue).
  const auto A = std::make_shared<const CsrMatrix>(
      grid2d_laplacian(GridGeometry{10, 9, 1}, Stencil2D::FivePoint));
  FleetOptions fo;
  fo.shards = 1;
  fo.service = fleet_grid_options();
  fo.coalesce_window = 50.0;
  fo.queue_depth = 2;
  SolverFleet fleet(fo);

  std::vector<Job> jobs;
  for (std::uint64_t k = 0; k < 4; ++k) jobs.emplace_back(A, 1, 30 + k);
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    const std::uint64_t tenant = k < 2 ? 7 : 8;
    const std::uint64_t id = fleet.submit(
        jobs[k].request(tenant, /*version=*/k), static_cast<double>(k) * 0.5);
    EXPECT_EQ(id, k);  // fleet ids are submission order
  }
  EXPECT_EQ(fleet.shard_queue_depth(0), 2u);

  const std::vector<FleetResponse> rs = fleet.drain();
  ASSERT_EQ(rs.size(), 4u);
  const FleetStats& fs = fleet.stats();
  EXPECT_EQ(fs.submitted, 4);
  EXPECT_EQ(fs.completed, 2);
  EXPECT_EQ(fs.shed, 2);
  EXPECT_EQ(rs[0].status, RequestStatus::Done);
  EXPECT_EQ(rs[1].status, RequestStatus::Done);
  EXPECT_EQ(rs[2].status, RequestStatus::Shed);
  EXPECT_EQ(rs[3].status, RequestStatus::Shed);
  EXPECT_EQ(rs[2].shard, -1);

  // Per-tenant accounting: tenant 7's work completed, tenant 8 was shed.
  const auto& tenants = fleet.tenant_stats();
  ASSERT_EQ(tenants.count(7), 1u);
  ASSERT_EQ(tenants.count(8), 1u);
  EXPECT_EQ(tenants.at(7).requests, 2);
  EXPECT_EQ(tenants.at(7).shed, 0);
  EXPECT_EQ(tenants.at(7).rhs_columns, 2);
  EXPECT_GT(tenants.at(7).sim_seconds, 0);
  EXPECT_EQ(tenants.at(8).requests, 2);
  EXPECT_EQ(tenants.at(8).shed, 2);
  EXPECT_EQ(tenants.at(8).rhs_columns, 0);
  EXPECT_EQ(tenants.at(8).sim_seconds, 0);
}

TEST(SolverFleet, FullHomeShardRedirectsToLeastLoadedPeer) {
  const auto A = std::make_shared<const CsrMatrix>(
      grid2d_laplacian(GridGeometry{10, 10, 1}, Stencil2D::FivePoint));
  FleetOptions fo;
  fo.shards = 2;
  fo.service = fleet_grid_options();
  fo.routing = RoutingPolicy::Hash;  // fixed home for the one pattern
  fo.coalesce_window = 50.0;
  fo.queue_depth = 1;
  SolverFleet fleet(fo);

  std::vector<Job> jobs;
  for (std::uint64_t k = 0; k < 3; ++k) jobs.emplace_back(A, 1, 40 + k);
  for (std::size_t k = 0; k < jobs.size(); ++k)
    fleet.submit(jobs[k].request(/*tenant=*/0, /*version=*/k),
                 static_cast<double>(k) * 0.25);

  const std::vector<FleetResponse> rs = fleet.drain();
  ASSERT_EQ(rs.size(), 3u);
  EXPECT_EQ(fleet.stats().redirected, 1);
  EXPECT_EQ(fleet.stats().shed, 1);
  EXPECT_EQ(rs[0].status, RequestStatus::Done);
  EXPECT_FALSE(rs[0].redirected);
  EXPECT_EQ(rs[1].status, RequestStatus::Done);
  EXPECT_TRUE(rs[1].redirected);
  EXPECT_NE(rs[1].shard, rs[0].shard);  // overflow landed on the peer
  EXPECT_EQ(rs[2].status, RequestStatus::Shed);
}

TEST(SolverFleet, MigrationShipsSymbolicPayloadNotMatrixOrFactors) {
  // Three patterns on two shards: two share a home shard (pigeonhole).
  // Flooding the shared home with one pattern's traffic must migrate the
  // OTHER resident pattern's symbolic state to the cold shard — and only
  // the symbolic state: the audited byte counters prove the matrix and
  // numeric factors stayed put, and the analysis count proves the target
  // shard never re-analyzed.
  std::vector<std::shared_ptr<const CsrMatrix>> mats;
  mats.push_back(std::make_shared<CsrMatrix>(
      grid2d_laplacian(GridGeometry{10, 10, 1}, Stencil2D::FivePoint)));
  mats.push_back(std::make_shared<CsrMatrix>(
      grid2d_laplacian(GridGeometry{9, 10, 1}, Stencil2D::FivePoint)));
  mats.push_back(std::make_shared<CsrMatrix>(
      grid2d_laplacian(GridGeometry{10, 9, 1}, Stencil2D::FivePoint)));

  FleetOptions fo;
  fo.shards = 2;
  fo.service = fleet_grid_options();
  fo.routing = RoutingPolicy::Affinity;
  fo.coalesce_window = 100.0;
  fo.migration_threshold = 2.0;
  SolverFleet fleet(fo);

  // Warm-up: place each pattern on its home shard.
  std::vector<Job> warm;
  for (std::size_t p = 0; p < mats.size(); ++p) {
    warm.emplace_back(mats[p], 1, 50 + p);
    fleet.submit(warm.back().request(/*tenant=*/p),
                 static_cast<double>(p) * 200.0);
  }
  std::vector<FleetResponse> rs = fleet.drain();
  ASSERT_EQ(rs.size(), 3u);
  EXPECT_EQ(fleet.service_totals().analyses, 3);

  // Two patterns share a shard; `hot` floods it, `victim` gets migrated.
  std::size_t hot = 0, victim = 0;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      if (i != j && rs[i].shard == rs[j].shard) {
        hot = i;
        victim = j;
      }
  ASSERT_NE(hot, victim) << "two of three patterns must share a shard";
  const int busy_shard = rs[hot].shard;
  const int cold_shard = 1 - busy_shard;
  const std::uint64_t victim_fp =
      fleet.shard(0).fingerprint(*mats[victim]);
  EXPECT_TRUE(fleet.shard(busy_shard).has_pattern(victim_fp));

  // Flood the busy shard: distinct values-versions of the hot pattern pile
  // up behind open windows.
  double t = 700.0;
  std::vector<Job> flood;
  for (std::uint64_t k = 0; k < 5; ++k) {
    flood.emplace_back(mats[hot], 1, 60 + k);
    fleet.submit(flood.back().request(/*tenant=*/9, /*version=*/k + 1), t);
    t += 1.0;
  }
  EXPECT_GE(fleet.shard_queue_depth(busy_shard), 4u);
  EXPECT_EQ(fleet.shard_queue_depth(cold_shard), 0u);

  // The victim pattern's next request finds its affinity shard drowning:
  // its cached symbolic entry moves to the cold shard and the request
  // follows it there — served as a cache hit, no re-analysis.
  Job follow(mats[victim], 1, 70);
  fleet.submit(follow.request(/*tenant=*/victim, /*version=*/1), t);
  rs = fleet.drain();

  const FleetStats& fs = fleet.stats();
  EXPECT_EQ(fs.migrations, 1);
  EXPECT_GT(fs.migrated_bytes, 0);
  EXPECT_LT(fs.migrated_bytes, fs.migration_bulk_bytes)
      << "symbolic payload must undercut shipping the matrix + factors";
  EXPECT_FALSE(fleet.shard(busy_shard).has_pattern(victim_fp));
  EXPECT_TRUE(fleet.shard(cold_shard).has_pattern(victim_fp));
  EXPECT_EQ(fleet.service_totals().analyses, 3) << "migration re-analyzed";

  const auto it = std::find_if(rs.begin(), rs.end(), [&](const auto& r) {
    return r.tenant == victim && r.arrival >= 700.0;
  });
  ASSERT_NE(it, rs.end());
  EXPECT_EQ(it->status, RequestStatus::Done);
  EXPECT_EQ(it->shard, cold_shard);
  EXPECT_TRUE(it->warm);  // served from the migrated entry
  EXPECT_LT(it->solve.residual, 1e-12);
}

TEST(SolverFleet, WarmRepeatTrafficActivatesWithoutRefactorization) {
  // Same (pattern, values_version) arriving after the previous batch
  // completed: the shard re-activates its resident factors instead of
  // refactorizing, and solutions stay bitwise stable across batches.
  const auto A = std::make_shared<const CsrMatrix>(
      grid2d_laplacian(GridGeometry{10, 10, 1}, Stencil2D::FivePoint));
  FleetOptions fo;
  fo.shards = 1;
  fo.service = fleet_grid_options();
  SolverFleet fleet(fo);

  std::vector<Job> jobs;
  for (int k = 0; k < 3; ++k) jobs.emplace_back(A, 1, 80);  // same rhs
  for (std::size_t k = 0; k < jobs.size(); ++k)
    fleet.submit(jobs[k].request(/*tenant=*/0),
                 static_cast<double>(k) * 100.0);

  const std::vector<FleetResponse> rs = fleet.drain();
  ASSERT_EQ(rs.size(), 3u);
  EXPECT_EQ(fleet.stats().batches, 3);
  EXPECT_EQ(fleet.stats().activations, 2);
  EXPECT_EQ(fleet.service_totals().refactorizations, 1);
  EXPECT_FALSE(rs[0].warm);
  EXPECT_TRUE(rs[1].warm);
  EXPECT_FALSE(rs[1].refactored);
  EXPECT_TRUE(rs[2].warm);
  for (std::size_t i = 0; i < jobs[0].x.size(); ++i) {
    EXPECT_EQ(jobs[0].x[i], jobs[1].x[i]);
    EXPECT_EQ(jobs[0].x[i], jobs[2].x[i]);
  }
}

/// Path graph plus a trailing 2x2 block whose last diagonal entry controls
/// singularity (4.0 is exactly singular); the pattern never changes.
CsrMatrix path_plus_block(real_t last_diag) {
  const index_t nn = 34;
  CooMatrix coo(nn, nn);
  for (index_t i = 0; i + 1 < nn - 2; ++i) {
    coo.add(i, i + 1, -1.0);
    coo.add(i + 1, i, -1.0);
  }
  for (index_t i = 0; i < nn - 2; ++i) coo.add(i, i, 4.0);
  coo.add(nn - 2, nn - 2, 1.0);
  coo.add(nn - 2, nn - 1, 2.0);
  coo.add(nn - 1, nn - 2, 2.0);
  coo.add(nn - 1, nn - 1, last_diag);
  return CsrMatrix::from_coo(coo);
}

TEST(SolverFleet, FailedBatchReportsFailureAndFleetRecovers) {
  FleetOptions fo;
  fo.shards = 1;
  fo.service.Px = 2;
  fo.service.Py = 1;
  fo.service.Pz = 2;
  fo.service.nd.leaf_size = 4;
  SolverFleet fleet(fo);

  std::vector<Job> jobs;
  jobs.emplace_back(std::make_shared<CsrMatrix>(path_plus_block(5.0)), 1, 90);
  jobs.emplace_back(std::make_shared<CsrMatrix>(path_plus_block(4.0)), 1, 91);
  jobs.emplace_back(std::make_shared<CsrMatrix>(path_plus_block(6.0)), 1, 92);
  fleet.submit(jobs[0].request(/*tenant=*/1, /*version=*/0), 0.0);
  fleet.submit(jobs[1].request(/*tenant=*/2, /*version=*/1), 100.0);
  fleet.submit(jobs[2].request(/*tenant=*/3, /*version=*/2), 200.0);

  const std::vector<FleetResponse> rs = fleet.drain();
  ASSERT_EQ(rs.size(), 3u);
  EXPECT_EQ(rs[0].status, RequestStatus::Done);
  EXPECT_EQ(rs[1].status, RequestStatus::Failed);
  EXPECT_EQ(rs[2].status, RequestStatus::Done);  // fresh analysis recovers
  EXPECT_LT(rs[2].solve.residual, 1e-12);
  EXPECT_EQ(fleet.stats().failed, 1);
  const ServiceStats t = fleet.service_totals();
  EXPECT_EQ(t.refactor_failures, 1);
  EXPECT_EQ(t.analyses, 2);  // the poisoned entry was dropped and re-analyzed
  EXPECT_EQ(fleet.tenant_stats().at(2).failed, 1);
}

TEST(SolverFleet, ShardsGetDisjointSolveTagBases) {
  FleetOptions fo;
  fo.shards = 4;
  fo.service = fleet_grid_options();
  SolverFleet fleet(fo);
  ASSERT_EQ(fleet.shard_count(), 4);
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(fleet.shard(i).options().solve_tag_base, (i + 1) << 24);
}

}  // namespace
}  // namespace slu3d
