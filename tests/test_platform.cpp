#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <vector>

#include "simmpi/platform.hpp"
#include "simmpi/runtime.hpp"
#include "support/check.hpp"

namespace slu3d::sim {
namespace {

const MachineModel kModel{};  // defaults

std::vector<std::string> route_names(const PlatformLayout& layout, int src,
                                     int dst) {
  std::vector<int> ids;
  layout.route(src, dst, ids);
  std::vector<std::string> names;
  for (int id : ids) names.push_back(layout.link(id).name);
  return names;
}

const LinkUsage& usage(const RunResult& res, const std::string& name) {
  for (const LinkUsage& l : res.links)
    if (l.name == name) return l;
  ADD_FAILURE() << "no link named " << name;
  static const LinkUsage none{};
  return none;
}

// A two-node test fabric where the shared node uplink is the slow hop:
// alpha-only NICs (beta = 0) and a pure-latency node link, so every
// queueing delay below is an exact, hand-computable constant.
Platform two_node_platform() {
  Platform p;
  p.name = "two-node-test";
  p.machine.alpha = 1.0e-6;
  p.machine.beta = 0.0;
  p.levels.push_back({"node", 2, 5.0e-6, 0.0});
  return p;
}

TEST(Platform, FlatIsTheDefaultAndPresetsResolve) {
  EXPECT_TRUE(Platform{}.flat_wire());
  EXPECT_TRUE(Platform::flat().flat_wire());
  EXPECT_TRUE(Platform::preset("edison").flat_wire());
  EXPECT_TRUE(Platform::preset("flat").flat_wire());
  EXPECT_FALSE(Platform::preset("fattree-2to1").flat_wire());
  EXPECT_FALSE(Platform::preset("torus").flat_wire());
  EXPECT_THROW(Platform::preset("dragonfly"), Error);

  const auto names = Platform::preset_names();
  for (const char* expect : {"edison", "fattree-2to1", "torus"})
    EXPECT_NE(std::find(names.begin(), names.end(), expect), names.end())
        << expect;

  // The presets default to the paper's Edison-like machine constants.
  const Platform ft = Platform::preset("fattree-2to1");
  EXPECT_DOUBLE_EQ(ft.machine.alpha, kModel.alpha);
  EXPECT_DOUBLE_EQ(ft.machine.beta, kModel.beta);
  EXPECT_DOUBLE_EQ(ft.machine.gamma, kModel.gamma);
}

TEST(Platform, ParseReadsMachineConstantsAndLevels) {
  const Platform p = Platform::parse(
      "# test machine\n"
      "name tiny\n"
      "alpha 3.0e-6\n"
      "beta 2.0e-10   # trailing comment\n"
      "gamma 1.0e-11\n"
      "link node   arity=2 latency=5.0e-7 inv_bw=7.5e-11\n"
      "link switch arity=3 latency=1.0e-6 inv_bw=3.75e-11\n");
  EXPECT_EQ(p.name, "tiny");
  EXPECT_DOUBLE_EQ(p.machine.alpha, 3.0e-6);
  EXPECT_DOUBLE_EQ(p.machine.beta, 2.0e-10);
  EXPECT_DOUBLE_EQ(p.machine.gamma, 1.0e-11);
  ASSERT_EQ(p.levels.size(), 2u);
  EXPECT_EQ(p.levels[0].label, "node");
  EXPECT_EQ(p.levels[0].arity, 2);
  EXPECT_DOUBLE_EQ(p.levels[0].latency, 5.0e-7);
  EXPECT_DOUBLE_EQ(p.levels[0].inv_bw, 7.5e-11);
  EXPECT_EQ(p.levels[1].label, "switch");
  EXPECT_EQ(p.levels[1].arity, 3);
}

TEST(Platform, ParseRejectsMalformedDescriptions) {
  EXPECT_THROW(Platform::parse(""), Error);  // missing name
  EXPECT_THROW(Platform::parse("name x\nalpha nope\n"), Error);
  EXPECT_THROW(Platform::parse("name x\nfrobnicate 3\n"), Error);
  EXPECT_THROW(Platform::parse("name x\nlink n arity=1 latency=0 inv_bw=0\n"),
               Error);
  EXPECT_THROW(Platform::parse("name x\nlink n arity=2 latency=-1 inv_bw=0\n"),
               Error);
  EXPECT_THROW(Platform::parse("name x\nalpha -2e-6\n"), Error);
}

TEST(Platform, LoadResolvesPresetNamesAndFiles) {
  const Platform ft = Platform::load("fattree-2to1");
  EXPECT_EQ(ft.name, "fattree-2to1");
  EXPECT_EQ(ft.levels.size(), Platform::preset("fattree-2to1").levels.size());

  const char* path = "platform_roundtrip_test.txt";
  {
    std::ofstream f(path);
    f << "name filetest\nalpha 4.0e-6\nlink node arity=2 latency=1e-6 "
         "inv_bw=0\n";
  }
  const Platform p = Platform::load(path);
  EXPECT_EQ(p.name, "filetest");
  EXPECT_DOUBLE_EQ(p.machine.alpha, 4.0e-6);
  ASSERT_EQ(p.levels.size(), 1u);
  EXPECT_EQ(p.levels[0].arity, 2);
  std::remove(path);

  EXPECT_THROW(Platform::load("no-such-preset-or-file"), Error);
}

TEST(Platform, FlatRouteIsTheSenderWire) {
  const PlatformLayout layout(Platform::flat(kModel), 4);
  EXPECT_TRUE(layout.flat());
  EXPECT_EQ(layout.num_links(), 4);
  std::vector<int> ids;
  layout.route(2, 0, ids);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], 2);  // the *sender's* endpoint link
  // The contention-free transfer time over the flat wire is exactly the
  // historical LogGP message time, bit for bit.
  const offset_t bytes = 4096;
  EXPECT_EQ(layout.route_seconds(2, 0, bytes), kModel.message_time(bytes));
}

TEST(Platform, HierarchicalRoutesClimbToLowestCommonAncestor) {
  // fattree-2to1: 4 ranks per node, 4 nodes per switch. With 32 ranks that
  // is 8 nodes under 2 switches meeting at the spine.
  const PlatformLayout layout(Platform::preset("fattree-2to1"), 32);
  EXPECT_FALSE(layout.flat());
  // Same node: NIC up, peer NIC down — no shared links involved.
  EXPECT_EQ(route_names(layout, 0, 1),
            (std::vector<std::string>{"rank0.up", "rank1.down"}));
  // Same switch, different nodes: one shared uplink each way.
  EXPECT_EQ(route_names(layout, 0, 4),
            (std::vector<std::string>{"rank0.up", "node0.up", "node1.down",
                                      "rank4.down"}));
  // Different switches: full climb to the spine and back down.
  EXPECT_EQ(route_names(layout, 0, 16),
            (std::vector<std::string>{"rank0.up", "node0.up", "switch0.up",
                                      "switch1.down", "node4.down",
                                      "rank16.down"}));
  // Routes are directional: the reverse path uses the mirror links.
  EXPECT_EQ(route_names(layout, 4, 0),
            (std::vector<std::string>{"rank4.up", "node1.up", "node0.down",
                                      "rank0.down"}));
}

// The acceptance pin: the flat one-link-per-endpoint platform reproduces
// the historical per-endpoint LogGP clock *bitwise*. The expected values
// below are the exact alpha + beta*bytes arithmetic the old net_busy clock
// produced; EXPECT_EQ (not NEAR) on doubles demands bit equality.
TEST(PlatformRuntime, FlatPlatformReproducesLogGpClockBitwise) {
  const std::vector<real_t> payload(64, 1.0);
  const offset_t bytes = static_cast<offset_t>(payload.size() * sizeof(real_t));
  const double mt = kModel.message_time(bytes);
  const auto body = [&](Comm& world) {
    if (world.rank() == 0) {
      world.isend(1, 1, payload, CommPlane::XY);
      world.isend(2, 1, payload, CommPlane::Z);
    } else if (world.rank() == 1) {
      world.recv(0, 1, CommPlane::XY);
    } else {
      world.recv(0, 1, CommPlane::Z);
    }
  };
  const RunResult via_platform = run_ranks(3, Platform::flat(kModel), body);
  // The sender's CPU pays only the two injection overheads.
  EXPECT_EQ(via_platform.ranks[0].clock, 2 * kModel.alpha);
  // First receiver: exactly one transfer time.
  EXPECT_EQ(via_platform.ranks[1].clock, mt);
  // Second payload queues behind the first on the sender's single wire:
  // completion = max(ready, wire busy) + transfer = two transfer times.
  EXPECT_EQ(via_platform.ranks[2].clock, 2 * mt);
  EXPECT_EQ(via_platform.ranks[2].wait_seconds, 2 * mt);
  // The stall attribution sees the same queueing the clock always charged:
  // the second isend goes ready at its pre-overhead post time alpha but the
  // wire stays busy until mt.
  EXPECT_EQ(via_platform.ranks[0].link_queue_seconds, mt - kModel.alpha);
  EXPECT_EQ(via_platform.total_link_queue_seconds(), mt - kModel.alpha);

  // And the MachineModel convenience overload is the same platform:
  // identical clocks, waits, and counters, bit for bit.
  const RunResult via_model = run_ranks(3, kModel, body);
  ASSERT_EQ(via_model.ranks.size(), via_platform.ranks.size());
  for (std::size_t r = 0; r < via_model.ranks.size(); ++r) {
    const RankStats& a = via_model.ranks[r];
    const RankStats& b = via_platform.ranks[r];
    EXPECT_EQ(a.clock, b.clock) << r;
    EXPECT_EQ(a.wait_seconds, b.wait_seconds) << r;
    EXPECT_EQ(a.link_queue_seconds, b.link_queue_seconds) << r;
    EXPECT_EQ(a.bytes_sent, b.bytes_sent) << r;
    EXPECT_EQ(a.bytes_received, b.bytes_received) << r;
    EXPECT_EQ(a.messages_sent, b.messages_sent) << r;
    EXPECT_EQ(a.messages_received, b.messages_received) << r;
  }
}

TEST(PlatformRuntime, CountersAreInvariantAcrossPlatformsAndFatTreeIsSlower) {
  // The platform changes *when* messages move, never *whether*: per-rank
  // byte/message counters must be identical on any platform, while every
  // transfer crossing extra positive-latency hops makes clocks strictly
  // later on the fat tree.
  constexpr int kP = 8;
  const auto body = [&](Comm& world) {
    const int r = world.rank();
    const int n = world.size();
    std::vector<real_t> buf(32, static_cast<real_t>(r));
    world.isend((r + 1) % n, 1, buf, CommPlane::XY);
    world.isend((r + 3) % n, 2, buf, CommPlane::Z);
    world.recv((r + n - 1) % n, 1, CommPlane::XY);
    world.recv((r + n - 3) % n, 2, CommPlane::Z);
    std::vector<real_t> sum{static_cast<real_t>(r)};
    world.allreduce_sum(7, sum, CommPlane::XY);
  };
  const RunResult flat = run_ranks(kP, Platform::flat(kModel), body);
  const RunResult tree =
      run_ranks(kP, Platform::preset("fattree-2to1"), body);
  for (std::size_t r = 0; r < static_cast<std::size_t>(kP); ++r) {
    EXPECT_EQ(flat.ranks[r].bytes_sent, tree.ranks[r].bytes_sent) << r;
    EXPECT_EQ(flat.ranks[r].bytes_received, tree.ranks[r].bytes_received) << r;
    EXPECT_EQ(flat.ranks[r].messages_sent, tree.ranks[r].messages_sent) << r;
    EXPECT_EQ(flat.ranks[r].messages_received, tree.ranks[r].messages_received)
        << r;
  }
  EXPECT_GT(tree.max_clock(), flat.max_clock());
  // Link accounting conserves bytes: every message is charged on its NIC
  // up link exactly once, so summing NIC up-link bytes recovers the
  // per-rank sent totals.
  for (std::size_t r = 0; r < static_cast<std::size_t>(kP); ++r) {
    const LinkUsage& nic = usage(tree, "rank" + std::to_string(r) + ".up");
    EXPECT_EQ(nic.bytes, flat.ranks[r].total_bytes_sent()) << r;
  }
}

TEST(PlatformRuntime, SharedUplinkSerializesConcurrentTransfers) {
  // Ranks 0 and 1 (same node) each push one equal-size message to the other
  // node at logical time zero. Both payloads reach the shared node0.up link
  // at the same instant (after their private alpha-only NIC hop), so one of
  // them — whichever the FCFS wall-clock order favours — queues for exactly
  // one full link occupancy. The *aggregate* accounting is symmetric and
  // therefore deterministic even though the winner is not.
  const Platform p = two_node_platform();
  const double nic = p.machine.alpha;            // per-NIC-hop seconds
  const double up = p.levels[0].latency;         // per-node-link seconds
  const std::vector<real_t> payload(16, 2.0);
  const auto res = run_ranks(
      4, p,
      [&](Comm& world) {
        if (world.rank() == 0) {
          world.isend(2, 1, payload, CommPlane::XY);
        } else if (world.rank() == 1) {
          world.isend(3, 1, payload, CommPlane::XY);
        } else {
          world.recv(world.rank() - 2, 1, CommPlane::XY);
        }
      },
      RunOptions{/*trace=*/true});

  const LinkUsage& uplink = usage(res, "node0.up");
  EXPECT_EQ(uplink.messages, 2);
  EXPECT_EQ(uplink.bytes,
            static_cast<offset_t>(2 * payload.size() * sizeof(real_t)));
  // The loser waits one full occupancy of the uplink and nothing else: the
  // two payloads leave node0.up back to back, so they arrive at node1.down
  // exactly when it frees up and at distinct NIC down links.
  EXPECT_DOUBLE_EQ(uplink.queue_seconds, up);
  EXPECT_DOUBLE_EQ(res.total_link_queue_seconds(), up);
  EXPECT_DOUBLE_EQ(res.ranks[0].link_queue_seconds +
                       res.ranks[1].link_queue_seconds,
                   up);

  // Receiver clocks form a deterministic multiset: the winner's payload
  // crosses NIC up, node0.up, node1.down, NIC down; the loser lands one
  // uplink occupancy later.
  std::vector<double> arrivals{res.ranks[2].clock, res.ranks[3].clock};
  std::sort(arrivals.begin(), arrivals.end());
  EXPECT_DOUBLE_EQ(arrivals[0], 2 * nic + 2 * up);
  EXPECT_DOUBLE_EQ(arrivals[1], 2 * nic + 3 * up);

  // Exactly one LinkWait trace event, attributed to the congested uplink.
  int link_waits = 0;
  for (const RankTrace& trace : res.traces)
    for (const TraceEvent& ev : trace)
      if (ev.kind == TraceEvent::Kind::LinkWait) {
        ++link_waits;
        ASSERT_GE(ev.link, 0);
        EXPECT_EQ(res.link_names()[static_cast<std::size_t>(ev.link)],
                  "node0.up");
        EXPECT_DOUBLE_EQ(ev.t1 - ev.t0, up);
      }
  EXPECT_EQ(link_waits, 1);
}

TEST(PlatformRuntime, ManyToOneContentionGrowsWithFanIn) {
  // The fig12 divergence mechanism in miniature: on the flat platform a
  // many-to-one reduction pays each sender's private wire only, but on a
  // hierarchical platform the root's shared down-path serializes the
  // fan-in, so doubling the senders roughly doubles the queueing.
  const Platform p = two_node_platform();
  const auto fan_in = [&](int senders) {
    return run_ranks(4, p, [&, senders](Comm& world) {
      const std::vector<real_t> payload(16, 1.0);
      if (world.rank() >= 2 && world.rank() < 2 + senders) {
        world.isend(0, 1, payload, CommPlane::Z);
      } else if (world.rank() == 0) {
        for (int s = 0; s < senders; ++s) world.recv(2 + s, 1, CommPlane::Z);
      }
    });
  };
  const double q1 = fan_in(1).total_link_queue_seconds();
  EXPECT_DOUBLE_EQ(q1, 0.0);  // a single transfer never queues
  // Two node-1 senders reach the shared node1.up at the same instant; the
  // loser stalls one full uplink occupancy there, and because the uplink
  // is the slow hop the payloads stay spaced out downstream — the whole
  // contention bill lands on node1.up.
  const RunResult r2 = fan_in(2);
  EXPECT_DOUBLE_EQ(r2.total_link_queue_seconds(), p.levels[0].latency);
  EXPECT_DOUBLE_EQ(usage(r2, "node1.up").queue_seconds, p.levels[0].latency);
}

}  // namespace
}  // namespace slu3d::sim
