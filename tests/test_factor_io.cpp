#include <gtest/gtest.h>

#include <sstream>

#include "numeric/factor_io.hpp"
#include "numeric/seq_lu.hpp"
#include "order/nested_dissection.hpp"
#include "sparse/generators.hpp"
#include "support/rng.hpp"

namespace slu3d {
namespace {

TEST(FactorIo, CsrRoundTrip) {
  const GridGeometry g{7, 9, 1};
  const CsrMatrix A = grid2d_convection_diffusion(g, 0.4);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_csr_binary(ss, A);
  const CsrMatrix B = read_csr_binary(ss);
  ASSERT_EQ(B.n_rows(), A.n_rows());
  ASSERT_EQ(B.nnz(), A.nnz());
  for (index_t i = 0; i < A.n_rows(); ++i)
    for (index_t j : A.row_cols(i)) EXPECT_DOUBLE_EQ(B.at(i, j), A.at(i, j));
}

TEST(FactorIo, TreeRoundTrip) {
  const GridGeometry g{10, 10, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = nested_dissection(A, {.leaf_size = 8});
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_tree_binary(ss, tree);
  const SeparatorTree t2 = read_tree_binary(ss);
  ASSERT_EQ(t2.n_nodes(), tree.n_nodes());
  ASSERT_EQ(t2.root(), tree.root());
  for (std::size_t i = 0; i < tree.perm().size(); ++i)
    EXPECT_EQ(t2.perm()[i], tree.perm()[i]);
  for (int v = 0; v < tree.n_nodes(); ++v) {
    EXPECT_EQ(t2.node(v).sep_first, tree.node(v).sep_first);
    EXPECT_EQ(t2.node(v).parent, tree.node(v).parent);
  }
}

TEST(FactorIo, FactorizationSaveLoadSolve) {
  const GridGeometry g{9, 8, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = nested_dissection(A, {.leaf_size = 8});
  const BlockStructure bs(A, tree);
  SupernodalMatrix F(bs);
  F.fill_from(A.permuted_symmetric(tree.perm()));
  factorize_sequential(F);

  const std::string path = "/tmp/slu3d_factor_io_test.bin";
  save_factorization(path, tree, F);

  std::unique_ptr<BlockStructure> bs2;
  auto [tree2, F2] = load_factorization(path, A, &bs2);

  // Loaded factors must solve the system exactly like the originals.
  const auto pinv = invert_permutation(tree2.perm());
  const auto n = static_cast<std::size_t>(A.n_rows());
  Rng rng(97);
  std::vector<real_t> xref(n), b(n), pb(n);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  A.spmv(xref, b);
  for (std::size_t i = 0; i < n; ++i)
    pb[static_cast<std::size_t>(pinv[i])] = b[i];
  solve_factored(F2, pb);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(pb[static_cast<std::size_t>(pinv[i])], xref[i], 1e-10);
}

TEST(FactorIo, RejectsMismatchedStructure) {
  const GridGeometry g{8, 8, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree t1 = nested_dissection(A, {.leaf_size = 8});
  const BlockStructure b1(A, t1);
  SupernodalMatrix F(b1);
  F.fill_from(A.permuted_symmetric(t1.perm()));

  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_factors_binary(ss, F);
  // Different leaf size -> different structure -> fingerprint mismatch.
  const SeparatorTree t2 = nested_dissection(A, {.leaf_size = 16});
  const BlockStructure b2(A, t2);
  EXPECT_THROW(read_factors_binary(ss, b2), Error);
}

TEST(FactorIo, RejectsGarbageStream) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  ss << "this is not a factor file";
  const GridGeometry g{4, 4, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const BlockStructure bs(A, nested_dissection(A));
  EXPECT_THROW(read_factors_binary(ss, bs), Error);
  EXPECT_THROW(read_csr_binary(ss), Error);
}

TEST(MultiRhsSolve, MatchesSingleRhsSolves) {
  const GridGeometry g{10, 9, 1};
  const CsrMatrix A = grid2d_convection_diffusion(g, 0.3);
  const SeparatorTree tree = nested_dissection(A, {.leaf_size = 8});
  const BlockStructure bs(A, tree);
  SupernodalMatrix F(bs);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  F.fill_from(Ap);
  factorize_sequential(F);

  const auto n = static_cast<std::size_t>(A.n_rows());
  const index_t nrhs = 5;
  Rng rng(101);
  std::vector<real_t> X(n * static_cast<std::size_t>(nrhs));
  for (auto& v : X) v = rng.uniform(-1, 1);
  auto X0 = X;

  solve_factored_multi(F, X, nrhs);
  for (index_t k = 0; k < nrhs; ++k) {
    std::vector<real_t> col(X0.begin() + static_cast<std::ptrdiff_t>(k) * static_cast<std::ptrdiff_t>(n),
                            X0.begin() + static_cast<std::ptrdiff_t>(k + 1) * static_cast<std::ptrdiff_t>(n));
    solve_factored(F, col);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(X[static_cast<std::size_t>(k) * n + i], col[i], 1e-12)
          << "rhs " << k << " row " << i;
  }
}

TEST(MultiRhsSolve, SingleColumnDegeneratesToVectorSolve) {
  const GridGeometry g{6, 6, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = nested_dissection(A, {.leaf_size = 8});
  const BlockStructure bs(A, tree);
  SupernodalMatrix F(bs);
  F.fill_from(A.permuted_symmetric(tree.perm()));
  factorize_sequential(F);
  const auto n = static_cast<std::size_t>(A.n_rows());
  std::vector<real_t> a(n, 1.0), b(n, 1.0);
  solve_factored_multi(F, a, 1);
  solve_factored(F, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Fingerprint, PatternOnlyIgnoresValuesAndSeesStructure) {
  const GridGeometry g{8, 8, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);

  // Same pattern, different values -> same fingerprint (this is what lets
  // a service key refactorization caches on it).
  auto vals = std::vector<real_t>(A.values().begin(), A.values().end());
  for (auto& v : vals) v *= 1.75;
  const CsrMatrix A2 = CsrMatrix::from_raw(
      A.n_rows(), A.n_cols(),
      std::vector<offset_t>(A.row_ptr().begin(), A.row_ptr().end()),
      std::vector<index_t>(A.col_idx().begin(), A.col_idx().end()),
      std::move(vals));
  EXPECT_EQ(pattern_fingerprint(A), pattern_fingerprint(A2));

  // Different pattern -> different fingerprint.
  const CsrMatrix B = grid2d_laplacian(g, Stencil2D::NinePoint);
  const CsrMatrix C = grid2d_laplacian(GridGeometry{8, 9, 1},
                                       Stencil2D::FivePoint);
  EXPECT_NE(pattern_fingerprint(A), pattern_fingerprint(B));
  EXPECT_NE(pattern_fingerprint(A), pattern_fingerprint(C));
}

TEST(Fingerprint, StructureFingerprintMatchesSaveLoadCheck) {
  // The structure fingerprint is what write/read_factors_binary embed; it
  // must be stable across identical constructions and change with the
  // ordering.
  const GridGeometry g{9, 8, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree t1 = nested_dissection(A, {.leaf_size = 8});
  const BlockStructure bs_a(A, t1);
  const BlockStructure bs_b(A, t1);
  EXPECT_EQ(structure_fingerprint(bs_a), structure_fingerprint(bs_b));

  const SeparatorTree t2 = nested_dissection(A, {.leaf_size = 16});
  const BlockStructure bs_c(A, t2);
  EXPECT_NE(structure_fingerprint(bs_a), structure_fingerprint(bs_c));
}

}  // namespace
}  // namespace slu3d
