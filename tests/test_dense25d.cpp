#include <gtest/gtest.h>

#include <mutex>

#include "dense25d/dense_lu25d.hpp"
#include "numeric/dense_kernels.hpp"
#include "support/rng.hpp"

namespace slu3d {
namespace {

using sim::CommPlane;
using sim::MachineModel;
using sim::ProcessGrid3D;
using sim::run_ranks;

const MachineModel kModel{};

std::vector<real_t> random_dominant_dense(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<real_t> a(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (index_t i = 0; i < n; ++i)
    a[static_cast<std::size_t>(i) * static_cast<std::size_t>(n + 1)] +=
        static_cast<real_t>(n);
  return a;
}

/// Runs 2.5D LU on a p x p x c grid and compares the gathered packed LU
/// against the sequential dense reference.
void check_25d(index_t n, index_t block, int p, int c) {
  auto a0 = random_dominant_dense(n, 19);
  auto ref = a0;
  dense::getrf_nopiv(n, ref.data(), n);

  Dense25dOptions opt;
  opt.block = block;
  std::vector<real_t> gathered;
  std::mutex mu;
  run_ranks(p * p * c, kModel, [&](sim::Comm& world) {
    auto grid = ProcessGrid3D::create(world, p, p, c);
    Dense25dMatrix A(n, opt, p, grid.plane().px(), grid.plane().py());
    if (grid.pz() == 0) A.fill_from(a0);  // other layers start at zero
    dense_lu_25d(A, world, grid, opt);
    auto full = gather_dense_25d(A, world, grid, opt);
    if (full.has_value()) {
      const std::lock_guard<std::mutex> lock(mu);
      gathered = std::move(*full);
    }
  });

  ASSERT_EQ(gathered.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_NEAR(gathered[i], ref[i], 1e-9)
        << "entry " << i << " p=" << p << " c=" << c;
}

struct Case {
  index_t n, block;
  int p, c;
};

class Dense25dGrids : public ::testing::TestWithParam<Case> {};

TEST_P(Dense25dGrids, MatchesSequentialDenseLU) {
  const auto [n, block, p, c] = GetParam();
  check_25d(n, block, p, c);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Dense25dGrids,
    ::testing::Values(Case{64, 16, 1, 1}, Case{64, 16, 2, 1},
                      Case{64, 16, 2, 2}, Case{64, 8, 2, 4},
                      Case{96, 16, 3, 2}, Case{64, 16, 1, 4},
                      Case{80, 16, 2, 3}),
    [](const auto& pi) {
      std::string name = "n";
      name += std::to_string(pi.param.n);
      name += 'b';
      name += std::to_string(pi.param.block);
      name += 'p';
      name += std::to_string(pi.param.p);
      name += 'c';
      name += std::to_string(pi.param.c);
      return name;
    });

TEST(Dense25d, ExtraLayersCutPlaneTraffic) {
  // The 2.5D claim: per-process XY (panel broadcast) volume drops as c
  // grows at fixed P, paid for with z-reduction traffic and memory.
  const index_t n = 96, b = 8;
  auto a0 = random_dominant_dense(n, 23);
  auto run = [&](int p, int c) {
    Dense25dOptions opt;
    opt.block = b;
    return run_ranks(p * p * c, kModel, [&](sim::Comm& world) {
      auto grid = ProcessGrid3D::create(world, p, p, c);
      Dense25dMatrix A(n, opt, p, grid.plane().px(), grid.plane().py());
      if (grid.pz() == 0) A.fill_from(a0);
      dense_lu_25d(A, world, grid, opt);
    });
  };
  const auto r1 = run(4, 1);   // P = 16, c = 1 (2D)
  const auto r4 = run(2, 4);   // P = 16, c = 4
  EXPECT_EQ(r1.max_bytes_received(CommPlane::Z), 0);
  EXPECT_GT(r4.max_bytes_received(CommPlane::Z), 0);
  EXPECT_LT(r4.max_bytes_received(CommPlane::XY),
            r1.max_bytes_received(CommPlane::XY));
}

TEST(Dense25d, RejectsMisalignedBlockSize) {
  Dense25dOptions opt;
  opt.block = 10;
  EXPECT_THROW(Dense25dMatrix(64, opt, 1, 0, 0), Error);
}

}  // namespace
}  // namespace slu3d
