// The distributed-analysis contract (src/analysis/): analysis run inside
// the simulated machine — SequentialSim on rank 0 or subtree-parallel
// Distributed — must be *bitwise* interchangeable with the host path.
//
//  * DistAnalysis.*: oracle equality. analyze_host is the oracle; both
//    in-sim modes must reproduce its permutation, separator tree, etree,
//    and BlockStructure exactly, on every rank, swept over the fig9/fig10
//    problem classes x grid shapes {1x1x1, 2x2x1, 2x2x2, 4x2x2} x both ND
//    variants.
//  * DistAnalysisFuzz.*: randomized graphs (>= 12 seeds), asserting the
//    full pipeline (analysis -> 3D factorization -> 3D solve) from the
//    distributed analysis yields bitwise-equal factors end-to-end — equal
//    symbolic flops, equal factor bytes, and a bitwise-equal solution
//    panel — vs. the host-analysis run.
//  * DistAnalysisColdStart.*: the regression pin for the cold-start
//    critical path. At P = 64 the Distributed mode must beat the
//    SequentialSim baseline measurably (simulated seconds, analysis
//    included), and warm cache hits must be untouched by either mode.
//  * The ParallelNdRanks tie-break pin rides in DistAnalysis.NdTieBreak*:
//    sequential and parallel ND agree on the *whole* tree (not just the
//    top separator), which is what makes the oracle equality possible.
#include <gtest/gtest.h>

#include <mutex>
#include <vector>

#include "analysis/dist_analysis.hpp"
#include "lu3d/solver3d.hpp"
#include "order/parallel_nd.hpp"
#include "service/solver_service.hpp"
#include "sparse/generators.hpp"
#include "support/rng.hpp"

namespace slu3d {
namespace {

using sim::MachineModel;
using sim::run_ranks;

const MachineModel kModel{};

// Connected random graph: a Hamiltonian path plus `extra` random chords,
// diagonally dominant so downstream LU is stable without pivot growth.
CsrMatrix random_graph(index_t n, index_t extra, std::uint64_t seed) {
  Rng rng(seed);
  CooMatrix coo(n, n);
  for (index_t i = 0; i + 1 < n; ++i) {
    coo.add(i, i + 1, -1.0);
    coo.add(i + 1, i, -1.0);
  }
  for (index_t e = 0; e < extra; ++e) {
    const auto a = static_cast<index_t>(rng.next_index(n));
    const auto b = static_cast<index_t>(rng.next_index(n));
    if (a == b) continue;
    coo.add(a, b, -1.0);
    coo.add(b, a, -1.0);
  }
  for (index_t i = 0; i < n; ++i) coo.add(i, i, 8.0);
  return CsrMatrix::from_coo(coo);
}

bool same_tree(const SeparatorTree& a, const SeparatorTree& b) {
  if (a.n_nodes() != b.n_nodes() || a.root() != b.root()) return false;
  if (!std::equal(a.perm().begin(), a.perm().end(), b.perm().begin(),
                  b.perm().end()))
    return false;
  for (int i = 0; i < a.n_nodes(); ++i) {
    const auto &x = a.node(i), &y = b.node(i);
    if (x.subtree_first != y.subtree_first || x.sep_first != y.sep_first ||
        x.sep_last != y.sep_last || x.left != y.left || x.right != y.right ||
        x.parent != y.parent)
      return false;
  }
  return true;
}

bool same_bs(const BlockStructure& a, const BlockStructure& b) {
  if (a.n_snodes() != b.n_snodes() || a.n() != b.n()) return false;
  if (a.total_flops() != b.total_flops() || a.total_nnz() != b.total_nnz())
    return false;
  for (int s = 0; s < a.n_snodes(); ++s) {
    if (a.first_col(s) != b.first_col(s) || a.nd_parent(s) != b.nd_parent(s) ||
        a.panel_rows(s) != b.panel_rows(s) ||
        a.snode_flops(s) != b.snode_flops(s))
      return false;
    const auto pa = a.lpanel(s), pb = b.lpanel(s);
    if (pa.size() != pb.size()) return false;
    for (std::size_t k = 0; k < pa.size(); ++k)
      if (pa[k].snode != pb[k].snode || pa[k].rows != pb[k].rows) return false;
  }
  return true;
}

// One sweep point: a fig9/fig10 problem class at one simulated grid shape.
struct SweepCase {
  const char* cls;
  int Px, Py, Pz;
};

CsrMatrix make_class(const std::string& cls) {
  // The paper's problem families: K2D5pt-class planar grid (fig9/fig10
  // planar), Serena-class 3D grid (fig9/fig10 nonplanar), G3_circuit-class
  // irregular, and nlpkkt-class saddle point.
  if (cls == "planar") return grid2d_laplacian({14, 13, 1}, Stencil2D::FivePoint);
  if (cls == "grid3d") return grid3d_laplacian({7, 6, 5}, Stencil3D::SevenPoint);
  if (cls == "circuit") return circuit2d({12, 12, 1}, 30, 42);
  return kkt3d({5, 4, 3}, 7);
}

class DistAnalysisSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(DistAnalysisSweep, InSimMatchesHostOracleBitwise) {
  const SweepCase c = GetParam();
  const CsrMatrix A = make_class(c.cls);
  const int P = c.Px * c.Py * c.Pz;
  for (const NdAlgorithm alg :
       {NdAlgorithm::LevelSet, NdAlgorithm::Multilevel}) {
    const NdOptions opts{.leaf_size = 8, .algorithm = alg};
    const AnalysisResult oracle = analyze_host(A, opts);
    for (const AnalysisMode mode :
         {AnalysisMode::SequentialSim, AnalysisMode::Distributed}) {
      std::vector<int> ok(static_cast<std::size_t>(P), -1);
      const auto res = run_ranks(P, kModel, [&](sim::Comm& world) {
        const AnalysisResult r = analyze_in_sim(A, world, opts, mode);
        const bool good = same_tree(*oracle.tree, *r.tree) &&
                          oracle.etree == r.etree && same_bs(*oracle.bs, *r.bs);
        ok[static_cast<std::size_t>(world.rank())] = good ? 1 : 0;
      });
      for (int r = 0; r < P; ++r)
        EXPECT_EQ(ok[static_cast<std::size_t>(r)], 1)
            << c.cls << " alg=" << static_cast<int>(alg)
            << " mode=" << static_cast<int>(mode) << " P=" << P
            << " rank=" << r;
      // The phase must have been charged to the simulated clock.
      EXPECT_GT(res.max_analysis_seconds(), 0);
      if (mode == AnalysisMode::Distributed && P > 1) {
        EXPECT_GT(res.total_analysis_messages_sent(), 0);
      }
    }
  }
}

const SweepCase kSweep[] = {
    {"planar", 1, 1, 1},  {"planar", 2, 2, 1},  {"planar", 2, 2, 2},
    {"planar", 4, 2, 2},  {"grid3d", 1, 1, 1},  {"grid3d", 2, 2, 1},
    {"grid3d", 2, 2, 2},  {"grid3d", 4, 2, 2},  {"circuit", 1, 1, 1},
    {"circuit", 2, 2, 1}, {"circuit", 2, 2, 2}, {"circuit", 4, 2, 2},
    {"kkt3d", 1, 1, 1},   {"kkt3d", 2, 2, 1},   {"kkt3d", 2, 2, 2},
    {"kkt3d", 4, 2, 2},
};

INSTANTIATE_TEST_SUITE_P(Fig9Fig10Classes, DistAnalysisSweep,
                         ::testing::ValuesIn(kSweep),
                         [](const auto& param_info) {
                           const SweepCase& c = param_info.param;
                           return std::string(c.cls) + "_" +
                                  std::to_string(c.Px) + "x" +
                                  std::to_string(c.Py) + "x" +
                                  std::to_string(c.Pz);
                         });

// Full-tree tie-break pin: sequential and parallel ND must agree on the
// ENTIRE tree, bitwise, on irregular graphs full of equal-degree /
// equal-gain ties — the property the distributed analysis' oracle equality
// rests on. (MatchesSerialTopSeparatorChoice in test_parallel_nd only
// checks the root separator.)
TEST(DistAnalysis, NdTieBreakFullTreeMatchesSerial) {
  const CsrMatrix A = circuit2d({13, 11, 1}, 40, 9);
  for (const NdAlgorithm alg :
       {NdAlgorithm::LevelSet, NdAlgorithm::Multilevel}) {
    const NdOptions opts{.leaf_size = 8, .algorithm = alg};
    const SeparatorTree serial = nested_dissection(A, opts);
    for (int P : {2, 4, 8}) {
      std::vector<int> ok(static_cast<std::size_t>(P), -1);
      run_ranks(P, kModel, [&](sim::Comm& world) {
        const SeparatorTree par = parallel_nested_dissection(A, world, opts);
        ok[static_cast<std::size_t>(world.rank())] =
            same_tree(serial, par) ? 1 : 0;
      });
      for (int r = 0; r < P; ++r)
        EXPECT_EQ(ok[static_cast<std::size_t>(r)], 1)
            << "alg=" << static_cast<int>(alg) << " P=" << P << " rank=" << r;
    }
  }
}

// The stats funnel is a pure refactor outside an analysis phase: a run
// that never calls begin_analysis_phase reports a zero analysis split.
TEST(DistAnalysis, NoPhaseMeansZeroAnalysisSplit) {
  const auto res = run_ranks(4, kModel, [&](sim::Comm& world) {
    const std::vector<real_t> payload(32, 1.0);
    const int peer = world.rank() ^ 1;
    world.send(peer, 7, payload, sim::CommPlane::XY);
    (void)world.recv(peer, 7, sim::CommPlane::XY);
    world.barrier(9, sim::CommPlane::XY);
  });
  EXPECT_EQ(res.max_analysis_seconds(), 0);
  EXPECT_EQ(res.max_analysis_bytes_received(), 0);
  EXPECT_EQ(res.total_analysis_messages_sent(), 0);
}

// >= 12 random graphs: the full pipeline from the distributed analysis
// must equal the host-analysis pipeline bitwise — same symbolic flops,
// same factor bytes, and a bitwise-identical solution panel. The numeric
// phase is deterministic (Determinism suite), so any deviation here is
// the analysis producing a different structure.
TEST(DistAnalysisFuzz, RandomGraphsFactorBitwiseEqualEndToEnd) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const index_t n = 120 + static_cast<index_t>(seed) * 7;
    const CsrMatrix A =
        random_graph(n, n + static_cast<index_t>(seed) * 11, 5000 + seed);
    const auto un = static_cast<std::size_t>(n);
    Rng rng(77 + seed);
    std::vector<real_t> xref(un), b(un);
    for (auto& v : xref) v = rng.uniform(-1, 1);
    A.spmv(xref, b);

    Solver3dOptions opt;
    opt.Px = 2;
    opt.Py = 2;
    opt.Pz = 2;
    opt.nd.leaf_size = 8;
    opt.nd.algorithm = NdAlgorithm::Multilevel;
    opt.refinement_steps = 0;

    std::vector<real_t> x_host(un), x_dist(un);
    opt.analysis = AnalysisMode::Host;
    const auto rep_host = solve_distributed_3d(A, b, x_host, opt);
    opt.analysis = AnalysisMode::Distributed;
    const auto rep_dist = solve_distributed_3d(A, b, x_dist, opt);

    EXPECT_LT(rep_host.residual, 1e-12) << "seed=" << seed;
    EXPECT_EQ(rep_host.flops, rep_dist.flops) << "seed=" << seed;
    EXPECT_EQ(rep_host.mem_total, rep_dist.mem_total) << "seed=" << seed;
    EXPECT_EQ(rep_host.mem_max, rep_dist.mem_max) << "seed=" << seed;
    EXPECT_EQ(rep_host.w_fact, rep_dist.w_fact) << "seed=" << seed;
    EXPECT_EQ(rep_host.w_red, rep_dist.w_red) << "seed=" << seed;
    for (std::size_t i = 0; i < un; ++i)
      ASSERT_EQ(x_host[i], x_dist[i]) << "seed=" << seed << " i=" << i;
    // Only the in-sim run carries an analysis split.
    EXPECT_EQ(rep_host.t_analysis, 0) << "seed=" << seed;
    EXPECT_GT(rep_dist.t_analysis, 0) << "seed=" << seed;
    EXPECT_GT(rep_dist.msg_analysis, 0) << "seed=" << seed;
  }
}

// Cold-start regression pin at P = 64: putting the analysis on the ranks
// subtree-parallel must beat the honest sequential-on-rank-0 baseline on
// the simulated critical path. Measured headroom is ~2.4x (dist/seq
// analysis ratio ~0.41 on this problem), so the 0.7x pin has slack
// without being vacuous. Warm hits skip analysis entirely in both modes.
TEST(DistAnalysisColdStart, DistributedBeatsSequentialBaselineAtP64) {
  const CsrMatrix A = grid2d_laplacian({40, 40, 1}, Stencil2D::FivePoint);

  auto make_opts = [&](AnalysisMode mode) {
    service::ServiceOptions o;
    o.Px = 4;
    o.Py = 4;
    o.Pz = 4;
    o.nd.leaf_size = 8;
    o.nd.algorithm = NdAlgorithm::Multilevel;
    o.analysis = mode;
    return o;
  };

  service::SolverService seq(make_opts(AnalysisMode::SequentialSim));
  service::SolverService dist(make_opts(AnalysisMode::Distributed));

  const service::FactorReport cold_seq = seq.factor(A);
  const service::FactorReport cold_dist = dist.factor(A);

  ASSERT_FALSE(cold_seq.cache_hit);
  ASSERT_FALSE(cold_dist.cache_hit);
  ASSERT_GT(cold_seq.t_analysis, 0);
  ASSERT_GT(cold_dist.t_analysis, 0);
  // Identical structure either way — the modes only move where the
  // analysis runs, never what it produces.
  EXPECT_EQ(cold_seq.flops, cold_dist.flops);
  EXPECT_EQ(cold_seq.mem_total, cold_dist.mem_total);

  // The pin: the distributed analysis phase, and with it the whole
  // cold-start critical path, is measurably faster.
  EXPECT_LT(cold_dist.t_analysis, 0.7 * cold_seq.t_analysis);
  EXPECT_LT(cold_dist.factor_time, cold_seq.factor_time);
  // The split is consistent: analysis time is part of factor_time.
  EXPECT_LE(cold_dist.t_analysis, cold_dist.factor_time);
  EXPECT_LE(cold_seq.t_analysis, cold_seq.factor_time);

  // Warm hits are unaffected: no analysis runs, no analysis split is
  // reported, and the two modes' refactorization paths are identical.
  const service::FactorReport warm_seq = seq.factor(A);
  const service::FactorReport warm_dist = dist.factor(A);
  EXPECT_TRUE(warm_seq.cache_hit);
  EXPECT_TRUE(warm_dist.cache_hit);
  EXPECT_EQ(warm_seq.t_analysis, 0);
  EXPECT_EQ(warm_dist.t_analysis, 0);
  EXPECT_EQ(warm_seq.w_analysis, 0);
  EXPECT_EQ(warm_dist.w_analysis, 0);
  EXPECT_DOUBLE_EQ(warm_seq.factor_time, warm_dist.factor_time);
  EXPECT_EQ(seq.stats().analyses, 1);
  EXPECT_EQ(dist.stats().analyses, 1);
}

}  // namespace
}  // namespace slu3d
