#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "numeric/dense_kernels.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace slu3d {
namespace {

/// Column-major dense helper.
struct Dense {
  index_t rows, cols;
  std::vector<real_t> a;
  Dense(index_t r, index_t c) : rows(r), cols(c), a(static_cast<std::size_t>(r) * static_cast<std::size_t>(c), 0.0) {}
  real_t& operator()(index_t i, index_t j) {
    return a[static_cast<std::size_t>(i) + static_cast<std::size_t>(j) * static_cast<std::size_t>(rows)];
  }
  real_t operator()(index_t i, index_t j) const {
    return a[static_cast<std::size_t>(i) + static_cast<std::size_t>(j) * static_cast<std::size_t>(rows)];
  }
};

Dense random_dominant(index_t n, Rng& rng) {
  Dense d(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) d(i, j) = rng.uniform(-1, 1);
  for (index_t i = 0; i < n; ++i) d(i, i) += static_cast<real_t>(n) + 1.0;
  return d;
}

Dense matmul(const Dense& x, const Dense& y) {
  Dense z(x.rows, y.cols);
  for (index_t j = 0; j < y.cols; ++j)
    for (index_t k = 0; k < x.cols; ++k)
      for (index_t i = 0; i < x.rows; ++i) z(i, j) += x(i, k) * y(k, j);
  return z;
}

class GetrfSizes : public ::testing::TestWithParam<index_t> {};

TEST_P(GetrfSizes, ReconstructsA) {
  const index_t n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 77 + 1);
  const Dense A0 = random_dominant(n, rng);
  Dense A = A0;
  dense::getrf_nopiv(n, A.a.data(), n);
  // Extract L (unit lower) and U, multiply back.
  Dense L(n, n), U(n, n);
  for (index_t j = 0; j < n; ++j) {
    L(j, j) = 1.0;
    for (index_t i = j + 1; i < n; ++i) L(i, j) = A(i, j);
    for (index_t i = 0; i <= j; ++i) U(i, j) = A(i, j);
  }
  const Dense P = matmul(L, U);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      EXPECT_NEAR(P(i, j), A0(i, j), 1e-9 * static_cast<real_t>(n));
}

INSTANTIATE_TEST_SUITE_P(SweepIncludingBlockBoundaries, GetrfSizes,
                         ::testing::Values(1, 2, 3, 7, 16, 47, 48, 49, 96, 131));

TEST(Getrf, ThrowsOnSingular) {
  Dense A(2, 2);
  A(0, 0) = 1.0;
  A(0, 1) = 2.0;
  A(1, 0) = 2.0;
  A(1, 1) = 4.0;  // exactly singular, zero pivot appears at step 2
  EXPECT_THROW(dense::getrf_nopiv(2, A.a.data(), 2, 1e-12), Error);
}

TEST(TrsmLeftLowerUnit, SolvesAgainstReference) {
  const index_t n = 23, m = 9;
  Rng rng(3);
  Dense A = random_dominant(n, rng);
  Dense B(n, m);
  for (index_t j = 0; j < m; ++j)
    for (index_t i = 0; i < n; ++i) B(i, j) = rng.uniform(-1, 1);
  Dense X = B;
  dense::trsm_left_lower_unit(n, m, A.a.data(), n, X.a.data(), n);
  // Check L * X == B with L = unit lower of A.
  for (index_t j = 0; j < m; ++j)
    for (index_t i = 0; i < n; ++i) {
      real_t acc = X(i, j);
      for (index_t k = 0; k < i; ++k) acc += A(i, k) * X(k, j);
      EXPECT_NEAR(acc, B(i, j), 1e-10);
    }
}

TEST(TrsmRightUpper, SolvesAgainstReference) {
  const index_t n = 19, m = 7;
  Rng rng(5);
  Dense A = random_dominant(n, rng);
  Dense B(m, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) B(i, j) = rng.uniform(-1, 1);
  Dense X = B;
  dense::trsm_right_upper(n, m, A.a.data(), n, X.a.data(), m);
  // Check X * U == B with U = upper of A (incl. diagonal).
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) {
      real_t acc = 0;
      for (index_t k = 0; k <= j; ++k) acc += X(i, k) * A(k, j);
      EXPECT_NEAR(acc, B(i, j), 1e-10);
    }
}

TEST(GemmMinus, MatchesReference) {
  const index_t m = 13, n = 11, k = 17;
  Rng rng(7);
  Dense A(m, k), B(k, n), C(m, n);
  for (auto* d : {&A, &B, &C})
    for (auto& v : d->a) v = rng.uniform(-1, 1);
  Dense C0 = C;
  dense::gemm_minus(m, n, k, A.a.data(), m, B.a.data(), k, C.a.data(), m);
  const Dense AB = matmul(A, B);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      EXPECT_NEAR(C(i, j), C0(i, j) - AB(i, j), 1e-12);
}

TEST(GemmMinus, HandlesEmptyExtents) {
  std::vector<real_t> a{1}, b{1}, c{1};
  dense::gemm_minus(0, 0, 0, a.data(), 1, b.data(), 1, c.data(), 1);
  dense::gemm_minus(1, 1, 0, a.data(), 1, b.data(), 1, c.data(), 1);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
}

TEST(Trsv, LowerThenUpperSolvesSystem) {
  const index_t n = 31;
  Rng rng(9);
  Dense A0 = random_dominant(n, rng);
  Dense A = A0;
  dense::getrf_nopiv(n, A.a.data(), n);
  std::vector<real_t> x(static_cast<std::size_t>(n)), b(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    x[static_cast<std::size_t>(i)] = rng.uniform(-1, 1);
  // b = A0 * x
  for (index_t i = 0; i < n; ++i) {
    real_t acc = 0;
    for (index_t j = 0; j < n; ++j) acc += A0(i, j) * x[static_cast<std::size_t>(j)];
    b[static_cast<std::size_t>(i)] = acc;
  }
  dense::trsv_lower_unit(n, A.a.data(), n, b.data());
  dense::trsv_upper(n, A.a.data(), n, b.data());
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(b[static_cast<std::size_t>(i)], x[static_cast<std::size_t>(i)], 1e-9);
}

TEST(FlopCounts, BasicFormulas) {
  EXPECT_EQ(dense::getrf_flops(3), 18);
  EXPECT_EQ(dense::trsm_flops(2, 5), 20);
  EXPECT_EQ(dense::gemm_flops(2, 3, 4), 48);
}

}  // namespace
}  // namespace slu3d
