// Intra-rank thread-pool tests (see DESIGN.md, "Funneled threading
// model"). Three layers are pinned here:
//  - the pool primitives: full single-execution coverage, work stealing
//    under skew, exception propagation, nested-call rules, Barrier,
//    slot-ordered Reducer folds, and the process-wide WorkerBudget,
//  - the funneled contract: a pool worker calling into simmpi throws, a
//    worker growing its presized pack arena throws (ParallelKernels sizes
//    every worker's KernelScratch at construction), and the flop audit
//    identity charged == performed holds under workers,
//  - determinism: the parallel GEMM is bitwise identical to the serial
//    kernel, and a fig9-class 3D factorization produces bitwise-equal
//    factors and *identical RankStats* (clocks, per-plane bytes/messages,
//    per-kind flops and compute seconds) for threads = 1, 2 and 8 —
//    threading may only move wall-clock, never a simulated number.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "lu3d/factor3d.hpp"
#include "lu3d/factor3d_chol.hpp"
#include "numeric/dense_kernels.hpp"
#include "numeric/kernel_scratch.hpp"
#include "order/nested_dissection.hpp"
#include "sparse/generators.hpp"
#include "support/rng.hpp"
#include "threads/thread_pool.hpp"

namespace slu3d {
namespace {

using sim::MachineModel;
using sim::ProcessGrid3D;
using sim::RunResult;
using sim::run_ranks;

const MachineModel kModel{};

// ---------------------------------------------------------------------------
// Pool primitives
// ---------------------------------------------------------------------------

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  threads::ThreadPool pool(4);
  constexpr std::ptrdiff_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::ptrdiff_t i, int slot) {
    EXPECT_GE(slot, 0);
    EXPECT_LT(slot, pool.slots());
    hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::ptrdiff_t i = 0; i < kN; ++i)
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
}

TEST(ThreadPool, EmptyAndTinyRanges) {
  threads::ThreadPool pool(4);
  int ran = 0;
  pool.parallel_for(0, [&](std::ptrdiff_t, int) { ++ran; });
  EXPECT_EQ(ran, 0);
  std::atomic<int> one{0};
  pool.parallel_for(1, [&](std::ptrdiff_t i, int) {
    EXPECT_EQ(i, 0);
    one.fetch_add(1);
  });
  EXPECT_EQ(one.load(), 1);
}

// Deterministic steal: slot 0 takes its first index and blocks until every
// other index has run. Slot 0's remaining range can then only be drained by
// workers stealing from it, so steals() must advance (and coverage must
// still be exact) — independent of host core count or scheduling.
TEST(ThreadPool, StealsFromSkewedPartition) {
  threads::ThreadPool pool(4);
  if (pool.workers() == 0) GTEST_SKIP() << "worker budget exhausted";
  constexpr std::ptrdiff_t kN = 512;
  const std::uint64_t steals0 = pool.steals();
  std::vector<std::atomic<int>> hits(kN);
  std::atomic<std::ptrdiff_t> others{0};
  pool.parallel_for(kN, [&](std::ptrdiff_t i, int) {
    hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    if (i == 0) {
      while (others.load(std::memory_order_acquire) < kN - 1)
        std::this_thread::yield();
    } else {
      others.fetch_add(1, std::memory_order_release);
    }
  });
  for (std::ptrdiff_t i = 0; i < kN; ++i)
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  EXPECT_GT(pool.steals(), steals0);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolStaysUsable) {
  threads::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::ptrdiff_t i, int) {
                                   if (i == 37)
                                     throw std::runtime_error("boom at 37");
                                 }),
               std::runtime_error);
  // The region completed (workers re-parked); the pool must still work.
  std::atomic<int> count{0};
  pool.parallel_for(64, [&](std::ptrdiff_t, int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

// Free threads::parallel_for from inside a worker degrades to inline
// execution (kernels compose); a *direct* pool->parallel_for from a worker
// is a contract violation and throws.
TEST(ThreadPool, NestedFreeParallelForRunsInlineOnWorkers) {
  threads::ThreadPool pool(4);
  if (pool.workers() == 0) GTEST_SKIP() << "worker budget exhausted";
  threads::PoolScope scope(&pool);
  std::atomic<int> inner{0};
  std::atomic<bool> saw_worker{false};
  pool.for_each_slot([&](int slot) {
    if (slot != 0) {
      EXPECT_TRUE(threads::ThreadPool::in_worker());
      EXPECT_EQ(threads::ThreadPool::worker_pool(), &pool);
      saw_worker.store(true);
    }
    threads::parallel_for(8, [&](std::ptrdiff_t, int inner_slot) {
      // Inline fallback keeps the executing participant's slot.
      EXPECT_EQ(inner_slot, slot);
      inner.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_TRUE(saw_worker.load());
  EXPECT_EQ(inner.load(), 8 * pool.slots());
}

TEST(ThreadPool, DirectParallelForFromWorkerThrows) {
  threads::ThreadPool pool(4);
  if (pool.workers() == 0) GTEST_SKIP() << "worker budget exhausted";
  EXPECT_THROW(pool.for_each_slot([&](int slot) {
    if (slot != 0) pool.parallel_for(1, [](std::ptrdiff_t, int) {});
  }),
               Error);
}

// A slot-0 task body re-entering its own (busy) pool directly is the same
// contract violation from the other side — and the hazard the dense GEMM's
// busy() gate exists for.
TEST(ThreadPool, DirectParallelForFromOwnerTaskThrows) {
  threads::ThreadPool pool(4);
  if (pool.workers() == 0) GTEST_SKIP() << "worker budget exhausted";
  EXPECT_TRUE(pool.busy() == false);
  EXPECT_THROW(pool.for_each_slot([&](int slot) {
    if (slot == 0) {
      EXPECT_TRUE(pool.busy());
      pool.parallel_for(1, [](std::ptrdiff_t, int) {});
    }
  }),
               Error);
  EXPECT_FALSE(pool.busy());
}

TEST(ThreadPool, AccumulatorDrains) {
  threads::ThreadPool pool(2);
  pool.accumulate(5);
  pool.accumulate(7);
  EXPECT_EQ(pool.accumulated(), 12);
  EXPECT_EQ(pool.take_accumulated(), 12);
  EXPECT_EQ(pool.accumulated(), 0);
}

TEST(Barrier, SynchronizesPhases) {
  constexpr int kT = 4;
  constexpr int kPhases = 16;
  threads::Barrier barrier(kT);
  std::atomic<int> in_phase{0};
  std::atomic<bool> torn{false};
  std::vector<std::thread> ts;
  for (int t = 0; t < kT; ++t)
    ts.emplace_back([&] {
      for (int p = 0; p < kPhases; ++p) {
        in_phase.fetch_add(1);
        barrier.arrive_and_wait();
        // Everyone must have arrived at phase p before anyone proceeds.
        if (in_phase.load() < (p + 1) * kT) torn.store(true);
        barrier.arrive_and_wait();
      }
    });
  for (auto& t : ts) t.join();
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(in_phase.load(), kT * kPhases);
}

// The fold runs in ascending slot order, so a catastrophic-cancellation
// pattern gives one exact answer: ((0 + 1e16) + 1) - 1e16 == 0.0 in double
// (1e16 + 1 rounds back to 1e16). Any interleaving-dependent order would
// sometimes produce 1.0.
TEST(Reducer, FoldsInFixedSlotOrder) {
  threads::Reducer<double> red(3, 0.0);
  red.at(0) = 1e16;
  red.at(1) = 1.0;
  red.at(2) = -1e16;
  const double sum = red.reduce([](double a, double b) { return a + b; });
  EXPECT_EQ(sum, 0.0);
  red.reset();
  EXPECT_EQ(red.reduce([](double a, double b) { return a + b; }), 0.0);
}

TEST(WorkerBudget, AcquireReleaseAccounting) {
  auto& budget = threads::WorkerBudget::instance();
  EXPECT_GE(budget.total(), 3);  // floored so threads=4 pools stay exercisable
  const int avail0 = budget.available();
  const int got = budget.acquire(avail0);
  EXPECT_EQ(got, avail0);
  EXPECT_EQ(budget.available(), 0);
  EXPECT_EQ(budget.acquire(5), 0);  // dry budget degrades, never blocks
  budget.release(got);
  EXPECT_EQ(budget.available(), avail0);
}

TEST(WorkerBudget, PoolDegradesWhenBudgetDry) {
  auto& budget = threads::WorkerBudget::instance();
  const int got = budget.acquire(budget.available());
  {
    threads::ThreadPool pool(4);
    EXPECT_EQ(pool.workers(), 0);
    EXPECT_EQ(pool.requested(), 4);
    EXPECT_FALSE(pool.active());
    // Serial degradation still covers the range.
    int count = 0;
    pool.parallel_for(32, [&](std::ptrdiff_t, int slot) {
      EXPECT_EQ(slot, 0);
      ++count;
    });
    EXPECT_EQ(count, 32);
  }
  budget.release(got);
}

TEST(ResolveThreads, ExplicitValueWins) {
  EXPECT_EQ(threads::resolve_threads(5), 5);
  EXPECT_EQ(threads::resolve_threads(1), 1);
  EXPECT_GE(threads::resolve_threads(0), 1);  // env or serial default
}

TEST(PanelOptions, RejectsNegativeThreads) {
  pipeline::PanelOptions opt;
  opt.threads = -1;
  EXPECT_THROW(pipeline::validate_panel_options(opt), Error);
}

// ---------------------------------------------------------------------------
// Funneled contract
// ---------------------------------------------------------------------------

// A pool worker must never touch simmpi: all communication and clock
// charging stay on the rank thread. The guard in runtime.cpp throws.
TEST(Funneled, WorkerCallingSimmpiThrows) {
  std::atomic<bool> threw{false};
  std::atomic<bool> had_workers{false};
  run_ranks(1, kModel, [&](sim::Comm& world) {
    dense::ParallelKernels pk(4);
    if (pk.pool().workers() == 0) return;
    had_workers.store(true);
    // Rank-thread charging is fine...
    world.add_compute(1, sim::ComputeKind::Other);
    // ...worker charging is not (for_each_slot guarantees worker execution).
    try {
      pk.pool().for_each_slot([&](int slot) {
        if (slot != 0) world.add_compute(1, sim::ComputeKind::Other);
      });
    } catch (const Error&) {
      threw.store(true);
    }
  });
  if (!had_workers.load()) GTEST_SKIP() << "worker budget exhausted";
  EXPECT_TRUE(threw.load());
}

// The one-sided entry points are charged exactly like isend/irecv and are
// covered by the same funneled contract: a pool worker reaching
// put/get/accumulate/fence (or the expect/wait completion side) throws.
TEST(Funneled, WorkerCallingRmaWindowThrows) {
  std::atomic<bool> had_workers{false};
  std::atomic<int> rma_throws{0};
  run_ranks(1, kModel, [&](sim::Comm& world) {
    std::vector<real_t> mem(4, 0.0);
    sim::Window win = world.win_create(1, mem, sim::CommPlane::XY);
    dense::ParallelKernels pk(4);
    if (pk.pool().workers() == 0) return;
    had_workers.store(true);
    // Every charged window entry point on the rank thread is fine...
    win.put(0, 0, std::vector<real_t>{1, 2});
    win.expect(0).wait();
    win.get(0, 0, mem);
    win.fence(2);
    // ...and throws from a worker.
    pk.pool().for_each_slot([&](int slot) {
      if (slot == 0) return;
      auto expect_throw = [&](auto&& call) {
        try {
          call();
        } catch (const Error&) {
          rma_throws.fetch_add(1);
        }
      };
      expect_throw([&] { win.put(0, 0, std::vector<real_t>{1}); });
      expect_throw([&] { win.accumulate(0, 0, std::vector<real_t>{1}); });
      expect_throw([&] { win.get(0, 0, mem); });
      expect_throw([&] { (void)win.expect(0); });
      expect_throw([&] { win.fence(3); });
    });
  });
  if (!had_workers.load()) GTEST_SKIP() << "worker budget exhausted";
  // Every guarded call threw on every worker (5 entry points each).
  EXPECT_GT(rma_throws.load(), 0);
  EXPECT_EQ(rma_throws.load() % 5, 0);
}

// ParallelKernels presizes every worker's thread-local pack arena at
// construction; a worker asking for more afterwards is a kernel escaping
// its documented bounds and must fail loudly, not reallocate mid-region.
TEST(Funneled, WorkerArenaIsPresizedAndSealed) {
  dense::ParallelKernels pk(4);
  if (pk.pool().workers() == 0) GTEST_SKIP() << "worker budget exhausted";
  std::atomic<bool> undersized{false};
  std::atomic<int> grow_throws{0};
  std::atomic<int> worker_count{0};
  pk.pool().for_each_slot([&](int slot) {
    if (slot == 0) return;
    worker_count.fetch_add(1);
    auto& ks = dense::KernelScratch::per_rank();
    if (ks.pack_a_capacity() < dense::kWorkerPackA ||
        ks.pack_b_capacity() < dense::kWorkerPackB)
      undersized.store(true);
    // In-bounds reuse is fine on a worker...
    (void)ks.pack_a(dense::kWorkerPackA);
    (void)ks.pack_b(dense::kWorkerPackB);
    // ...growth past the presized capacity is not.
    try {
      (void)ks.pack_a(ks.pack_a_capacity() + 1);
    } catch (const Error&) {
      grow_throws.fetch_add(1);
    }
  });
  EXPECT_FALSE(undersized.load());
  EXPECT_EQ(grow_throws.load(), worker_count.load());
  EXPECT_EQ(worker_count.load(), pk.pool().workers());
}

TEST(Funneled, FlopAuditHoldsUnderWorkers) {
  constexpr index_t kN = 256;
  Rng rng(11);
  std::vector<real_t> a(static_cast<std::size_t>(kN) * kN);
  std::vector<real_t> b(a.size());
  std::vector<real_t> c(a.size(), 0.0);
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  dense::reset_flops_performed();
  const offset_t expected = dense::gemm_flops(kN, kN, kN);
  {
    dense::ParallelKernels pk(4);
    dense::gemm_minus(kN, kN, kN, a.data(), kN, b.data(), kN, c.data(), kN);
    // flops_performed() peeks the pool's side channel while it is live...
    EXPECT_EQ(dense::flops_performed(), expected);
  }
  // ...and the destructor drains it into the owner's counter.
  EXPECT_EQ(dense::flops_performed(), expected);
  dense::reset_flops_performed();
}

TEST(Funneled, RankLocalPoolIsCachedPerThread) {
  bool same = false, recreated = false, ambient_preserved = false;
  std::thread([&] {
    auto* first = &dense::ParallelKernels::rank_local(4);
    same = (&dense::ParallelKernels::rank_local(4) == first);
    // A different request re-keys the cache (the heap may reuse the freed
    // address, so the pinned property is the new request count).
    recreated = (dense::ParallelKernels::rank_local(2).pool().requested() == 2);
  }).join();
  EXPECT_TRUE(same);
  EXPECT_TRUE(recreated);
  std::thread([&] {
    dense::ParallelKernels pk(3);
    dense::ParallelKernels::ensure_rank_local(8);  // no-op: ambient pool set
    ambient_preserved = (threads::current_pool() == &pk.pool());
  }).join();
  EXPECT_TRUE(ambient_preserved);
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

void expect_bitwise_equal(const std::vector<real_t>& a,
                          const std::vector<real_t>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(real_t)), 0)
      << what;
}

TEST(Determinism, GemmBitwiseEqualSerialVsThreaded) {
  // Square (above the parallel threshold) and ragged shapes: edge tiles,
  // partial micro-panels, and the jr-panel fan-out all on the line.
  const struct {
    index_t m, n, k;
  } shapes[] = {{256, 256, 256}, {200, 150, 97}, {512, 64, 64}, {64, 512, 33}};
  for (const auto& s : shapes) {
    Rng rng(static_cast<std::uint64_t>(s.m * 1000 + s.n));
    std::vector<real_t> a(static_cast<std::size_t>(s.m) * static_cast<std::size_t>(s.k));
    std::vector<real_t> b(static_cast<std::size_t>(s.k) * static_cast<std::size_t>(s.n));
    for (auto& v : a) v = rng.uniform(-1, 1);
    for (auto& v : b) v = rng.uniform(-1, 1);
    std::vector<real_t> c_serial(static_cast<std::size_t>(s.m) * static_cast<std::size_t>(s.n), 0.5);
    std::vector<real_t> c_pool = c_serial;
    dense::gemm_minus(s.m, s.n, s.k, a.data(), s.m, b.data(), s.k,
                      c_serial.data(), s.m);
    {
      dense::ParallelKernels pk(4);
      dense::gemm_minus(s.m, s.n, s.k, a.data(), s.m, b.data(), s.k,
                        c_pool.data(), s.m);
    }
    expect_bitwise_equal(c_serial, c_pool, "gemm_minus");
  }
}

TEST(Determinism, GemmNtBitwiseEqualSerialVsThreaded) {
  const struct {
    index_t m, n, k;
  } shapes[] = {{256, 256, 256}, {200, 150, 97}};
  for (const auto& s : shapes) {
    Rng rng(77);
    std::vector<real_t> a(static_cast<std::size_t>(s.m) * static_cast<std::size_t>(s.k));
    std::vector<real_t> b(static_cast<std::size_t>(s.n) * static_cast<std::size_t>(s.k));
    for (auto& v : a) v = rng.uniform(-1, 1);
    for (auto& v : b) v = rng.uniform(-1, 1);
    std::vector<real_t> c_serial(static_cast<std::size_t>(s.m) * static_cast<std::size_t>(s.n), -0.25);
    std::vector<real_t> c_pool = c_serial;
    dense::gemm_minus_nt(s.m, s.n, s.k, a.data(), s.m, b.data(), s.n,
                         c_serial.data(), s.m);
    {
      dense::ParallelKernels pk(4);
      dense::gemm_minus_nt(s.m, s.n, s.k, a.data(), s.m, b.data(), s.n,
                           c_pool.data(), s.m);
    }
    expect_bitwise_equal(c_serial, c_pool, "gemm_minus_nt");
  }
}

TEST(Determinism, SequentialSparseLUAcrossThreadCounts) {
  const GridGeometry g{32, 32, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 16});
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  // Run each thread count on a fresh thread so rank_local caching cannot
  // leak a pool into later tests.
  auto run = [&](int threads) {
    SupernodalMatrix F(bs);
    std::thread([&] {
      F.fill_from(Ap);
      dense::ParallelKernels::rank_local(threads);
      factorize_sequential(F);
    }).join();
    return F;
  };
  const SupernodalMatrix F1 = run(1);
  for (int t : {2, 8}) {
    const SupernodalMatrix Ft = run(t);
    for (int s = 0; s < bs.n_snodes(); ++s) {
      const auto d1 = F1.diag(s), dt = Ft.diag(s);
      const auto l1 = F1.lpanel(s), lt = Ft.lpanel(s);
      const auto u1 = F1.upanel(s), ut = Ft.upanel(s);
      ASSERT_TRUE(std::equal(d1.begin(), d1.end(), dt.begin(), dt.end()))
          << "diag snode " << s << " threads " << t;
      ASSERT_TRUE(std::equal(l1.begin(), l1.end(), lt.begin(), lt.end()))
          << "L snode " << s << " threads " << t;
      ASSERT_TRUE(std::equal(u1.begin(), u1.end(), ut.begin(), ut.end()))
          << "U snode " << s << " threads " << t;
    }
  }
}

// ---- end-to-end: fig9 config, threads in {1, 2, 8} ----------------------

struct Problem {
  BlockStructure bs;
  CsrMatrix Ap;
};

Problem fig9_problem() {
  const GridGeometry g{48, 48, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 16});
  return {BlockStructure(A, tree), A.permuted_symmetric(tree.perm())};
}

struct LuRun {
  SupernodalMatrix F;
  RunResult res;
};

LuRun run_lu(const Problem& p, int Px, int Py, int Pz, const Lu3dOptions& opt) {
  const ForestPartition part(p.bs, Pz);
  LuRun out{SupernodalMatrix(p.bs), {}};
  std::mutex mu;
  out.res = run_ranks(Px * Py * Pz, kModel, [&](sim::Comm& world) {
    auto grid = ProcessGrid3D::create(world, Px, Py, Pz);
    Dist2dFactors F = make_3d_factors(p.bs, grid, part, p.Ap);
    factorize_3d(F, grid, part, opt);
    auto full = gather_3d_to_root(F, world, grid, part);
    if (full.has_value()) {
      const std::lock_guard<std::mutex> lock(mu);
      out.F = std::move(*full);
    }
  });
  return out;
}

void expect_factors_equal(const SupernodalMatrix& a, const SupernodalMatrix& b,
                          int threads) {
  for (int s = 0; s < a.structure().n_snodes(); ++s) {
    const auto da = a.diag(s), db = b.diag(s);
    const auto la = a.lpanel(s), lb = b.lpanel(s);
    const auto ua = a.upanel(s), ub = b.upanel(s);
    ASSERT_TRUE(std::equal(da.begin(), da.end(), db.begin(), db.end()))
        << "diag snode " << s << " threads " << threads;
    ASSERT_TRUE(std::equal(la.begin(), la.end(), lb.begin(), lb.end()))
        << "L snode " << s << " threads " << threads;
    ASSERT_TRUE(std::equal(ua.begin(), ua.end(), ub.begin(), ub.end()))
        << "U snode " << s << " threads " << threads;
  }
}

/// Every simulated counter must be bitwise independent of the thread
/// count: clocks (double ==, not near), per-plane wire volumes, per-kind
/// flops and compute seconds, wait time, and the packing side channels.
void expect_stats_identical(const RunResult& a, const RunResult& b,
                            int threads) {
  ASSERT_EQ(a.ranks.size(), b.ranks.size());
  for (std::size_t r = 0; r < a.ranks.size(); ++r) {
    const sim::RankStats& x = a.ranks[r];
    const sim::RankStats& y = b.ranks[r];
    const std::string ctx =
        "rank " + std::to_string(r) + " threads " + std::to_string(threads);
    EXPECT_EQ(x.clock, y.clock) << ctx;
    EXPECT_EQ(x.wait_seconds, y.wait_seconds) << ctx;
    for (std::size_t pl = 0; pl < static_cast<std::size_t>(sim::kNumPlanes);
         ++pl) {
      EXPECT_EQ(x.bytes_sent[pl], y.bytes_sent[pl]) << ctx << " plane " << pl;
      EXPECT_EQ(x.bytes_received[pl], y.bytes_received[pl]) << ctx;
      EXPECT_EQ(x.messages_sent[pl], y.messages_sent[pl]) << ctx;
      EXPECT_EQ(x.messages_received[pl], y.messages_received[pl]) << ctx;
    }
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(sim::kNumComputeKinds); ++k) {
      EXPECT_EQ(x.flops[k], y.flops[k]) << ctx << " kind " << k;
      EXPECT_EQ(x.compute_seconds[k], y.compute_seconds[k])
          << ctx << " kind " << k;
    }
    EXPECT_EQ(x.zred_blocks_total, y.zred_blocks_total) << ctx;
    EXPECT_EQ(x.zred_blocks_skipped, y.zred_blocks_skipped) << ctx;
    EXPECT_EQ(x.zred_bytes_saved, y.zred_bytes_saved) << ctx;
    EXPECT_EQ(x.panel_dense_bytes, y.panel_dense_bytes) << ctx;
    EXPECT_EQ(x.panel_saved_bytes, y.panel_saved_bytes) << ctx;
    EXPECT_EQ(x.panel_saved_msgs, y.panel_saved_msgs) << ctx;
  }
}

Lu3dOptions lu_options(bool sparse, int threads) {
  Lu3dOptions o;
  o.lu2d.lookahead = 8;
  o.lu2d.async = sparse;
  o.lu2d.packing =
      sparse ? pipeline::PanelPacking::Sparse : pipeline::PanelPacking::Dense;
  o.lu2d.threads = threads;
  o.async = sparse;
  o.packing =
      sparse ? pipeline::ZRedPacking::Sparse : pipeline::ZRedPacking::Dense;
  o.chunk_snodes = sparse ? 2 : 1;
  return o;
}

TEST(Determinism, Fig9FactorsAndStatsAcrossThreadCountsDense) {
  const Problem p = fig9_problem();
  const LuRun ref = run_lu(p, 2, 2, 2, lu_options(false, 1));
  for (int t : {2, 8}) {
    const LuRun v = run_lu(p, 2, 2, 2, lu_options(false, t));
    expect_factors_equal(ref.F, v.F, t);
    expect_stats_identical(ref.res, v.res, t);
  }
}

// The sparse wire formats drive the parallel pack / batched-expand paths
// (presence bitmaps, pack_present, receiver expansion), so they get their
// own sweep: any partition-dependent packing would show up as a bytes or
// clock diff here.
TEST(Determinism, Fig9FactorsAndStatsAcrossThreadCountsSparse) {
  const Problem p = fig9_problem();
  const LuRun ref = run_lu(p, 2, 2, 2, lu_options(true, 1));
  for (int t : {2, 8}) {
    const LuRun v = run_lu(p, 2, 2, 2, lu_options(true, t));
    expect_factors_equal(ref.F, v.F, t);
    expect_stats_identical(ref.res, v.res, t);
  }
}

TEST(Determinism, Fig9CholeskyAcrossThreadCounts) {
  const GridGeometry g{32, 32, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 16});
  const Problem p{BlockStructure(A, tree), A.permuted_symmetric(tree.perm())};
  auto run = [&](int threads) {
    const ForestPartition part(p.bs, 2);
    Chol3dOptions o;
    o.chol2d.lookahead = 8;
    o.chol2d.async = true;
    o.chol2d.packing = pipeline::PanelPacking::Sparse;
    o.chol2d.threads = threads;
    o.async = true;
    o.packing = pipeline::ZRedPacking::Sparse;
    o.chunk_snodes = 2;
    struct CholRun {
      CholeskyFactors F;
      RunResult res;
    } out{CholeskyFactors(p.bs), {}};
    std::mutex mu;
    out.res = run_ranks(2 * 2 * 2, kModel, [&](sim::Comm& world) {
      auto grid = ProcessGrid3D::create(world, 2, 2, 2);
      DistCholFactors F = make_3d_chol_factors(p.bs, grid, part, p.Ap);
      factorize_3d_cholesky(F, grid, part, o);
      auto full = gather_3d_cholesky(F, world, grid, part);
      if (full.has_value()) {
        const std::lock_guard<std::mutex> lock(mu);
        out.F = std::move(*full);
      }
    });
    return out;
  };
  const auto ref = run(1);
  const auto v = run(8);
  for (int s = 0; s < p.bs.n_snodes(); ++s) {
    const auto da = ref.F.diag(s), db = v.F.diag(s);
    const auto la = ref.F.lpanel(s), lb = v.F.lpanel(s);
    ASSERT_TRUE(std::equal(da.begin(), da.end(), db.begin(), db.end()))
        << "diag snode " << s;
    ASSERT_TRUE(std::equal(la.begin(), la.end(), lb.begin(), lb.end()))
        << "L snode " << s;
  }
  expect_stats_identical(ref.res, v.res, 8);
}

}  // namespace
}  // namespace slu3d
