// Regression tests for the paper's headline *trends* (§V): these are the
// properties EXPERIMENTS.md reports, pinned at small scale so a future
// change that silently breaks the communication-avoiding behaviour fails
// CI, not just the benchmarks.
#include <gtest/gtest.h>

#include "lu3d/factor3d.hpp"
#include "order/nested_dissection.hpp"
#include "sparse/generators.hpp"

namespace slu3d {
namespace {

using sim::CommPlane;
using sim::MachineModel;
using sim::ProcessGrid3D;
using sim::RunResult;
using sim::run_ranks;

struct Metrics {
  double time = 0;
  double t_scu = 0;
  offset_t w_fact = 0;
  offset_t w_red = 0;
  offset_t mem_total = 0;
  RunResult res;
};

Metrics run(const BlockStructure& bs, const CsrMatrix& Ap, int Px, int Py,
            int Pz, const Lu3dOptions& opt = {}) {
  const ForestPartition part(bs, Pz);
  const int P = Px * Py * Pz;
  std::vector<offset_t> mem(static_cast<std::size_t>(P), 0);
  RunResult res = run_ranks(P, MachineModel{}, [&](sim::Comm& w) {
    auto grid = ProcessGrid3D::create(w, Px, Py, Pz);
    Dist2dFactors F = make_3d_factors(bs, grid, part, Ap);
    mem[static_cast<std::size_t>(w.rank())] = F.allocated_bytes();
    factorize_3d(F, grid, part, opt);
  });
  Metrics m;
  m.time = res.max_clock();
  const sim::RankStats* crit = &res.ranks.front();
  for (const auto& r : res.ranks)
    if (r.clock > crit->clock) crit = &r;
  m.t_scu = crit->compute_seconds[static_cast<int>(sim::ComputeKind::SchurUpdate)];
  m.w_fact = res.max_bytes_received(CommPlane::XY);
  m.w_red = res.max_bytes_received(CommPlane::Z);
  for (offset_t b : mem) m.mem_total += b;
  m.res = std::move(res);
  return m;
}

Lu3dOptions with(int lookahead, bool async) {
  Lu3dOptions o;
  o.lu2d.lookahead = lookahead;
  o.lu2d.async = async;
  o.async = async;
  return o;
}

struct Problem {
  BlockStructure bs;
  CsrMatrix Ap;
  Problem(const CsrMatrix& A, const SeparatorTree& tree)
      : bs(A, tree), Ap(A.permuted_symmetric(tree.perm())) {}
};

Problem planar_problem() {
  static const GridGeometry g{48, 48, 1};
  static const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  return Problem(A, geometric_nd(g, {.leaf_size = 16}));
}

Problem nonplanar_problem() {
  static const GridGeometry g{12, 12, 12};
  static const CsrMatrix A = grid3d_laplacian(g, Stencil3D::SevenPoint);
  return Problem(A, geometric_nd(g, {.leaf_size = 24}));
}

TEST(PaperTrends, PlanarSpeedupGrowsMonotonicallyWithPz) {
  // Fig. 9, planar: at P = 16, each doubling of Pz must keep improving,
  // and Pz = 8 must be at least 3x faster than 2D.
  const Problem p = planar_problem();
  double prev = run(p.bs, p.Ap, 4, 4, 1).time;
  const double t2d = prev;
  for (int Pz : {2, 4, 8}) {
    const auto [px, py] = std::pair{Pz == 2 ? 2 : (Pz == 4 ? 2 : 1),
                                    Pz == 2 ? 4 : 2};
    const double t = run(p.bs, p.Ap, px, py, Pz).time;
    EXPECT_LT(t, prev) << "Pz = " << Pz;
    prev = t;
  }
  EXPECT_GT(t2d / prev, 3.0);
}

TEST(PaperTrends, NonplanarGainsAreModestAndScuBound) {
  // Fig. 9, non-planar extreme: 3D helps but far less than planar, and
  // the Schur-update share of the critical path grows as the 2D grids
  // shrink.
  const Problem p = nonplanar_problem();
  const auto m2d = run(p.bs, p.Ap, 4, 4, 1);
  const auto m3d = run(p.bs, p.Ap, 1, 2, 8);
  const double speedup = m2d.time / m3d.time;
  EXPECT_GT(speedup, 1.2);
  EXPECT_LT(speedup, 6.0);  // nowhere near the planar gains
  // Comm/compute overlap compresses the communication share of *both*
  // runs, so the SCU-share growth factor sits just under the 2.0 the
  // blocking schedule showed; the trend itself (share nearly doubles as
  // the 2D grids shrink) is what this pins.
  EXPECT_GT(m3d.t_scu / m3d.time, 1.8 * m2d.t_scu / m2d.time);
}

TEST(PaperTrends, LookaheadOverlapStrictlyReducesCriticalPath) {
  // The non-blocking panel pipeline must buy real simulated time: with the
  // look-ahead window open, panel broadcasts posted early ride under the
  // Schur updates of earlier supernodes, so the critical path strictly
  // shrinks versus the lookahead = 0 schedule on Fig. 9 configurations.
  for (const bool planar : {true, false}) {
    const Problem p = planar ? planar_problem() : nonplanar_problem();
    for (const auto& [Px, Py, Pz] : {std::tuple{4, 4, 1}, std::tuple{2, 4, 2}}) {
      const double t0 = run(p.bs, p.Ap, Px, Py, Pz, with(0, true)).time;
      const double t8 = run(p.bs, p.Ap, Px, Py, Pz, with(8, true)).time;
      EXPECT_LT(t8, t0) << (planar ? "planar " : "nonplanar ") << Px << "x"
                        << Py << "x" << Pz;
    }
  }
  // Acceptance floor: at least 5% on the planar 2D extreme.
  const Problem p = planar_problem();
  const double t0 = run(p.bs, p.Ap, 4, 4, 1, with(0, true)).time;
  const double t8 = run(p.bs, p.Ap, 4, 4, 1, with(8, true)).time;
  EXPECT_GT(t0 / t8, 1.05);
}

TEST(PaperTrends, AsyncSchedulePreservesByteCounters) {
  // The overlap changes *when* clocks advance, never *what* moves: every
  // rank's per-plane byte counters must be bit-identical between the
  // non-blocking and blocking forms of the same schedule.
  const Problem p = nonplanar_problem();
  for (const auto& [Px, Py, Pz] : {std::tuple{4, 4, 1}, std::tuple{2, 2, 4}}) {
    const Metrics ma = run(p.bs, p.Ap, Px, Py, Pz, with(4, true));
    const Metrics mb = run(p.bs, p.Ap, Px, Py, Pz, with(4, false));
    ASSERT_EQ(ma.res.ranks.size(), mb.res.ranks.size());
    for (std::size_t r = 0; r < ma.res.ranks.size(); ++r) {
      const auto& sa = ma.res.ranks[r];
      const auto& sb = mb.res.ranks[r];
      for (std::size_t pl = 0; pl < sim::kNumPlanes; ++pl) {
        EXPECT_EQ(sa.bytes_sent[pl], sb.bytes_sent[pl]) << "rank " << r;
        EXPECT_EQ(sa.bytes_received[pl], sb.bytes_received[pl]) << "rank " << r;
      }
    }
  }
}

TEST(PaperTrends, CommVolumeShapesMatchFig10) {
  // W_fact falls with Pz; W_red rises; the non-planar total crosses over
  // (3D total at large Pz exceeds the 2D total) while the planar total
  // stays below 2D through Pz = 8.
  const Problem planar = planar_problem();
  const auto p1 = run(planar.bs, planar.Ap, 4, 4, 1);
  const auto p8 = run(planar.bs, planar.Ap, 1, 2, 8);
  EXPECT_LT(p8.w_fact, p1.w_fact);
  EXPECT_GT(p8.w_red, 0);
  EXPECT_LT(p8.w_fact + p8.w_red, p1.w_fact);

  const Problem np = nonplanar_problem();
  const auto q1 = run(np.bs, np.Ap, 4, 4, 1);
  const auto q8 = run(np.bs, np.Ap, 1, 2, 8);
  EXPECT_LT(q8.w_fact, q1.w_fact);
  EXPECT_GT(q8.w_fact + q8.w_red, q1.w_fact);  // the non-planar crossover
}

TEST(PaperTrends, MemoryOverheadPlanarSmallNonplanarLarge) {
  // Fig. 11: replication overhead at Pz = 8 stays modest for planar
  // matrices and is several times larger for non-planar ones.
  const Problem planar = planar_problem();
  const double po =
      static_cast<double>(run(planar.bs, planar.Ap, 1, 2, 8).mem_total) /
          static_cast<double>(run(planar.bs, planar.Ap, 4, 4, 1).mem_total) -
      1.0;
  const Problem np = nonplanar_problem();
  const double no =
      static_cast<double>(run(np.bs, np.Ap, 1, 2, 8).mem_total) /
          static_cast<double>(run(np.bs, np.Ap, 4, 4, 1).mem_total) -
      1.0;
  EXPECT_LT(po, 0.60);       // planar: tens of percent
  EXPECT_GT(no, 2.0 * po);   // non-planar: several times more
}

}  // namespace
}  // namespace slu3d
