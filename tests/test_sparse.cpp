#include <gtest/gtest.h>

#include <sstream>

#include "sparse/csr.hpp"
#include "sparse/matrix_market.hpp"
#include "support/check.hpp"

namespace slu3d {
namespace {

CsrMatrix small_example() {
  // [ 4 -1  0 ]
  // [-1  4 -2 ]
  // [ 0  0  3 ]
  CooMatrix coo(3, 3);
  coo.add(0, 0, 4);
  coo.add(0, 1, -1);
  coo.add(1, 0, -1);
  coo.add(1, 1, 4);
  coo.add(1, 2, -2);
  coo.add(2, 2, 3);
  return CsrMatrix::from_coo(coo);
}

TEST(Csr, FromCooSortsAndStores) {
  const CsrMatrix A = small_example();
  EXPECT_EQ(A.n_rows(), 3);
  EXPECT_EQ(A.nnz(), 6);
  EXPECT_DOUBLE_EQ(A.at(0, 0), 4);
  EXPECT_DOUBLE_EQ(A.at(1, 2), -2);
  EXPECT_DOUBLE_EQ(A.at(2, 0), 0);  // absent entry
}

TEST(Csr, FromCooSumsDuplicates) {
  CooMatrix coo(2, 2);
  coo.add(0, 1, 1.5);
  coo.add(0, 1, 2.5);
  coo.add(1, 0, -1);
  const CsrMatrix A = CsrMatrix::from_coo(coo);
  EXPECT_EQ(A.nnz(), 2);
  EXPECT_DOUBLE_EQ(A.at(0, 1), 4.0);
}

TEST(Csr, FromCooRejectsOutOfRange) {
  CooMatrix coo(2, 2);
  coo.add(0, 5, 1.0);
  EXPECT_THROW(CsrMatrix::from_coo(coo), Error);
}

TEST(Csr, RowAccessorsAreConsistent) {
  const CsrMatrix A = small_example();
  const auto cols = A.row_cols(1);
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols[0], 0);
  EXPECT_EQ(cols[2], 2);
  EXPECT_EQ(A.row_nnz(2), 1);
}

TEST(Csr, SpmvMatchesManual) {
  const CsrMatrix A = small_example();
  const std::vector<real_t> x{1, 2, 3};
  std::vector<real_t> y(3);
  A.spmv(x, y);
  EXPECT_DOUBLE_EQ(y[0], 4 * 1 - 1 * 2);
  EXPECT_DOUBLE_EQ(y[1], -1 + 8 - 6);
  EXPECT_DOUBLE_EQ(y[2], 9);
}

TEST(Csr, TransposeRoundTrip) {
  const CsrMatrix A = small_example();
  const CsrMatrix T = A.transposed();
  EXPECT_DOUBLE_EQ(T.at(0, 1), -1);
  EXPECT_DOUBLE_EQ(T.at(2, 1), -2);
  const CsrMatrix B = T.transposed();
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(A.at(i, j), B.at(i, j));
}

TEST(Csr, SymmetrizedPatternAddsTransposePositions) {
  const CsrMatrix A = small_example();
  EXPECT_FALSE(A.pattern_is_symmetric());
  const CsrMatrix S = A.symmetrized_pattern();
  EXPECT_TRUE(S.pattern_is_symmetric());
  EXPECT_DOUBLE_EQ(S.at(2, 1), 0.0);  // structural zero at transpose position
  EXPECT_EQ(S.row_nnz(2), 2);         // gained (2,1)
  // Values of A are preserved.
  EXPECT_DOUBLE_EQ(S.at(1, 2), -2.0);
}

TEST(Csr, PermutedSymmetricRelocatesEntries) {
  const CsrMatrix A = small_example();
  const std::vector<index_t> perm{2, 0, 1};  // new k <- old perm[k]
  const CsrMatrix B = A.permuted_symmetric(perm);
  // B(pinv[i], pinv[j]) == A(i, j); pinv = {1, 2, 0}.
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 3; ++j) {
      const std::vector<index_t> pinv{1, 2, 0};
      EXPECT_DOUBLE_EQ(B.at(pinv[static_cast<std::size_t>(i)],
                            pinv[static_cast<std::size_t>(j)]),
                       A.at(i, j));
    }
}

TEST(Csr, NormInf) {
  const CsrMatrix A = small_example();
  EXPECT_DOUBLE_EQ(A.norm_inf(), 7.0);  // row 1: 1 + 4 + 2
}

TEST(Permutation, InvertAndValidate) {
  const std::vector<index_t> perm{2, 0, 3, 1};
  EXPECT_TRUE(is_permutation(perm));
  const auto pinv = invert_permutation(perm);
  for (std::size_t k = 0; k < perm.size(); ++k)
    EXPECT_EQ(pinv[static_cast<std::size_t>(perm[k])], static_cast<index_t>(k));
  EXPECT_FALSE(is_permutation(std::vector<index_t>{0, 0, 1}));
  EXPECT_FALSE(is_permutation(std::vector<index_t>{0, 5}));
}

TEST(MatrixMarket, RoundTripGeneral) {
  const CsrMatrix A = small_example();
  std::stringstream ss;
  write_matrix_market(ss, A);
  const CsrMatrix B = read_matrix_market(ss);
  ASSERT_EQ(B.n_rows(), A.n_rows());
  ASSERT_EQ(B.nnz(), A.nnz());
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(A.at(i, j), B.at(i, j));
}

TEST(MatrixMarket, ReadsSymmetricExpanded) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real symmetric\n"
     << "% a comment line\n"
     << "3 3 4\n"
     << "1 1 2.0\n2 1 -1.0\n2 2 2.0\n3 3 1.0\n";
  const CsrMatrix A = read_matrix_market(ss);
  EXPECT_EQ(A.nnz(), 5);  // off-diagonal mirrored
  EXPECT_DOUBLE_EQ(A.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(A.at(1, 0), -1.0);
}

TEST(MatrixMarket, ReadsPatternAsOnes) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate pattern general\n"
     << "2 2 2\n"
     << "1 1\n2 2\n";
  const CsrMatrix A = read_matrix_market(ss);
  EXPECT_DOUBLE_EQ(A.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(A.at(1, 1), 1.0);
}

TEST(MatrixMarket, RejectsGarbage) {
  std::stringstream ss;
  ss << "not a matrix market file\n";
  EXPECT_THROW(read_matrix_market(ss), Error);
}

}  // namespace
}  // namespace slu3d
