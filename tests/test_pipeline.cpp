// Tests for the shared factorization pipeline engines (src/pipeline/):
//  - golden per-plane comm counters pinning the dense-mode wire format of
//    both variants to the pre-refactor byte counts on the fig9 configs,
//  - cross-variant schedule parity (LU vs Cholesky on the same SPD matrix),
//  - sparse z-reduction packing: bitwise-identical factors, reduced W_red,
//    savings counters,
//  - chunked / blocking reduction paths,
//  - shared option validation.
#include <gtest/gtest.h>

#include <mutex>
#include <string>

#include "lu3d/factor3d.hpp"
#include "lu3d/factor3d_chol.hpp"
#include "numeric/dense_kernels.hpp"
#include "order/nested_dissection.hpp"
#include "pipeline/zreduce.hpp"
#include "sparse/generators.hpp"

namespace slu3d {
namespace {

using sim::CommPlane;
using sim::MachineModel;
using sim::ProcessGrid3D;
using sim::RunResult;
using sim::run_ranks;

const MachineModel kModel{};

struct PlaneTotals {
  offset_t bytes[2] = {0, 0};
  offset_t msgs[2] = {0, 0};
  offset_t max_recv[2] = {0, 0};
};

PlaneTotals plane_totals(const RunResult& res) {
  PlaneTotals t;
  for (const auto& r : res.ranks)
    for (std::size_t pl = 0; pl < 2; ++pl) {
      t.bytes[pl] += r.bytes_received[pl];
      t.msgs[pl] += r.messages_received[pl];
      t.max_recv[pl] = std::max(t.max_recv[pl], r.bytes_received[pl]);
    }
  return t;
}

struct Problem {
  BlockStructure bs;
  CsrMatrix Ap;
};

Problem fig9_problem(bool planar) {
  if (planar) {
    const GridGeometry g{48, 48, 1};
    const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
    const SeparatorTree tree = geometric_nd(g, {.leaf_size = 16});
    return {BlockStructure(A, tree), A.permuted_symmetric(tree.perm())};
  }
  const GridGeometry g{12, 12, 12};
  const CsrMatrix A = grid3d_laplacian(g, Stencil3D::SevenPoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 24});
  return {BlockStructure(A, tree), A.permuted_symmetric(tree.perm())};
}

RunResult run_lu3d(const Problem& p, int Px, int Py, int Pz,
                   const Lu3dOptions& opt = {}) {
  const ForestPartition part(p.bs, Pz);
  return run_ranks(Px * Py * Pz, kModel, [&](sim::Comm& world) {
    auto grid = ProcessGrid3D::create(world, Px, Py, Pz);
    Dist2dFactors F = make_3d_factors(p.bs, grid, part, p.Ap);
    factorize_3d(F, grid, part, opt);
  });
}

RunResult run_chol3d(const Problem& p, int Px, int Py, int Pz,
                     const Chol3dOptions& opt = {}) {
  const ForestPartition part(p.bs, Pz);
  return run_ranks(Px * Py * Pz, kModel, [&](sim::Comm& world) {
    auto grid = ProcessGrid3D::create(world, Px, Py, Pz);
    DistCholFactors F = make_3d_chol_factors(p.bs, grid, part, p.Ap);
    factorize_3d_cholesky(F, grid, part, opt);
  });
}

// ---------------------------------------------------------------------------
// Golden dense-mode communication counters. These pin the engines' default
// (Dense) wire format and schedule to the byte/message counts measured on
// the fig9 configs before the pipeline refactor: any change to panel
// broadcast payloads, stash scheduling, ancestor enumeration order, or
// packed block layout shows up here.
// ---------------------------------------------------------------------------

struct GoldenCase {
  const char* name;  // fig9 problem class
  int Px, Py, Pz;
  // {XY bytes, Z bytes, XY msgs, Z msgs, max XY recv, max Z recv}, summed /
  // maxed over all ranks.
  offset_t lu[6];
  offset_t chol[6];
};

constexpr GoldenCase kGolden[] = {
    {"planar", 4, 4, 1, {3369936, 0, 6840, 0, 295648, 0},
     {2753712, 0, 6069, 0, 296432, 0}},
    {"planar", 2, 4, 2, {2246624, 18432, 4560, 1, 202448, 18432},
     {1630400, 9408, 3789, 1, 191616, 9408}},
    {"planar", 2, 2, 4, {1123312, 100232, 2280, 7, 127824, 59904},
     {917904, 50880, 2023, 6, 134168, 30432}},
    {"planar", 1, 2, 8, {561656, 351088, 1140, 23, 74320, 124416},
     {356248, 177824, 883, 17, 37104, 63072}},
    {"nonplanar", 4, 4, 1, {7395072, 0, 2844, 0, 690736, 0},
     {6054384, 0, 2541, 0, 734160, 0}},
    {"nonplanar", 2, 4, 2, {4930048, 165888, 1896, 1, 613944, 165888},
     {3589360, 83520, 1593, 1, 492312, 83520}},
    {"nonplanar", 2, 2, 4, {2465024, 872064, 948, 7, 482968, 539136},
     {2018128, 438288, 847, 6, 518064, 271008}},
    {"nonplanar", 1, 2, 8, {1232512, 2571848, 474, 23, 427056, 1005696},
     {785616, 1292024, 373, 17, 187512, 505296}},
};

class GoldenCommCounters : public ::testing::TestWithParam<GoldenCase> {};

void expect_totals(const RunResult& res, const offset_t (&want)[6],
                   const char* variant) {
  const PlaneTotals t = plane_totals(res);
  EXPECT_EQ(t.bytes[0], want[0]) << variant << " XY bytes";
  EXPECT_EQ(t.bytes[1], want[1]) << variant << " Z bytes";
  EXPECT_EQ(t.msgs[0], want[2]) << variant << " XY messages";
  EXPECT_EQ(t.msgs[1], want[3]) << variant << " Z messages";
  EXPECT_EQ(t.max_recv[0], want[4]) << variant << " max XY recv";
  EXPECT_EQ(t.max_recv[1], want[5]) << variant << " max Z recv";
}

TEST_P(GoldenCommCounters, DenseModeMatchesPreRefactorBytes) {
  const GoldenCase& c = GetParam();
  const Problem p = fig9_problem(std::string(c.name) == "planar");
  expect_totals(run_lu3d(p, c.Px, c.Py, c.Pz), c.lu, "LU");
  expect_totals(run_chol3d(p, c.Px, c.Py, c.Pz), c.chol, "Chol");
}

INSTANTIATE_TEST_SUITE_P(
    Fig9Configs, GoldenCommCounters, ::testing::ValuesIn(kGolden),
    [](const auto& pi) {
      return std::string(pi.param.name) + "_" + std::to_string(pi.param.Px) +
             "x" + std::to_string(pi.param.Py) + "x" +
             std::to_string(pi.param.Pz);
    });

// ---------------------------------------------------------------------------
// Cross-variant schedule parity: factoring the same SPD matrix with the LU
// and Cholesky policies must produce the same communication *shape* — the
// symmetric variant moves roughly half the z-reduction volume (it packs one
// triangle instead of two rectangles) and strictly fewer panel messages (no
// U-panel broadcasts), but the level schedule is shared, so counts stay
// within a narrow ratio band rather than diverging structurally.
// ---------------------------------------------------------------------------

TEST(CrossVariantParity, CholMovesHalfTheReductionVolumeOfLu) {
  const GridGeometry g{8, 8, 8};
  const CsrMatrix A = grid3d_laplacian(g, Stencil3D::SevenPoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 16});
  const Problem p{BlockStructure(A, tree), A.permuted_symmetric(tree.perm())};

  const PlaneTotals lu = plane_totals(run_lu3d(p, 2, 2, 4));
  const PlaneTotals ch = plane_totals(run_chol3d(p, 2, 2, 4));

  ASSERT_GT(lu.bytes[1], 0);
  ASSERT_GT(ch.bytes[1], 0);
  // Z volume: triangle vs two rectangles + full diagonal → ratio ~0.5.
  const double z_ratio = static_cast<double>(ch.bytes[1]) /
                         static_cast<double>(lu.bytes[1]);
  EXPECT_GT(z_ratio, 0.40);
  EXPECT_LT(z_ratio, 0.62);
  // XY traffic: Cholesky broadcasts fewer, smaller panels.
  EXPECT_LT(ch.bytes[0], lu.bytes[0]);
  EXPECT_LT(ch.msgs[0], lu.msgs[0]);
  // Same level schedule: reduction message counts stay comparable (the
  // symmetric variant may skip more structurally-empty chunks, never more
  // than half of them here).
  EXPECT_LE(ch.msgs[1], lu.msgs[1]);
  EXPECT_GE(2 * ch.msgs[1], lu.msgs[1]);
}

// ---------------------------------------------------------------------------
// Sparse z-reduction packing. Must change no numeric value (the factors are
// compared bitwise against the dense run) while sending strictly fewer
// reduction bytes and reporting the savings in the zred_* counters.
// ---------------------------------------------------------------------------

Problem sparse_test_problem() {
  // Exactly fig10's K2D5pt at tiny scale (32x32 five-point Laplacian,
  // leaf_size 32): with Pz = 4 the shallow subtrees leave several ancestor
  // replica blocks untouched, so sparse packing has something to skip.
  const GridGeometry g{32, 32, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 32});
  return {BlockStructure(A, tree), A.permuted_symmetric(tree.perm())};
}

/// Factors with the given options and gathers the result on rank 0.
SupernodalMatrix gather_lu3d(const Problem& p, int Px, int Py, int Pz,
                             const Lu3dOptions& opt, RunResult* res_out = nullptr) {
  const ForestPartition part(p.bs, Pz);
  SupernodalMatrix gathered(p.bs);
  std::mutex mu;
  RunResult res = run_ranks(Px * Py * Pz, kModel, [&](sim::Comm& world) {
    auto grid = ProcessGrid3D::create(world, Px, Py, Pz);
    Dist2dFactors F = make_3d_factors(p.bs, grid, part, p.Ap);
    factorize_3d(F, grid, part, opt);
    auto full = gather_3d_to_root(F, world, grid, part);
    if (full.has_value()) {
      const std::lock_guard<std::mutex> lock(mu);
      gathered = std::move(*full);
    }
  });
  if (res_out) *res_out = std::move(res);
  return gathered;
}

void expect_bitwise_equal(const SupernodalMatrix& a, const SupernodalMatrix& b,
                          index_t n) {
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j <= i; ++j) {
      ASSERT_EQ(a.l_entry(i, j), b.l_entry(i, j)) << "L(" << i << "," << j << ")";
      ASSERT_EQ(a.u_entry(j, i), b.u_entry(j, i)) << "U(" << j << "," << i << ")";
    }
}

TEST(SparseZReduction, BitwiseIdenticalFactorsAndReducedWred) {
  const Problem p = sparse_test_problem();
  Lu3dOptions dense, sparse;
  sparse.packing = pipeline::ZRedPacking::Sparse;

  RunResult rd, rs;
  const SupernodalMatrix fd = gather_lu3d(p, 2, 2, 4, dense, &rd);
  const SupernodalMatrix fs = gather_lu3d(p, 2, 2, 4, sparse, &rs);
  expect_bitwise_equal(fd, fs, p.bs.n());

  // Dense mode reports no savings.
  EXPECT_EQ(rd.total_zred_bytes_saved(), 0);
  EXPECT_EQ(rd.total_zred_blocks_total(), 0);

  // Sparse mode skips blocks and shrinks the reduction plane everywhere
  // it is measured: total sent, per-rank max received (paper W_red).
  EXPECT_GT(rs.total_zred_blocks_total(), 0);
  EXPECT_GT(rs.total_zred_blocks_skipped(), 0);
  EXPECT_LT(rs.total_zred_blocks_skipped(), rs.total_zred_blocks_total());
  EXPECT_GT(rs.total_zred_bytes_saved(), 0);
  EXPECT_LT(rs.total_bytes_sent(CommPlane::Z), rd.total_bytes_sent(CommPlane::Z));
  EXPECT_LT(rs.max_bytes_received(CommPlane::Z),
            rd.max_bytes_received(CommPlane::Z));
  // The savings counter is exact: dense volume = sparse volume + saved.
  EXPECT_EQ(rs.total_bytes_sent(CommPlane::Z) + rs.total_zred_bytes_saved(),
            rd.total_bytes_sent(CommPlane::Z));
  // The XY (2D factorization) plane is untouched by the packing mode.
  EXPECT_EQ(rs.total_bytes_sent(CommPlane::XY),
            rd.total_bytes_sent(CommPlane::XY));
}

TEST(SparseZReduction, CholeskyVariantAlsoSavesWithIdenticalFactors) {
  const Problem p = sparse_test_problem();
  const ForestPartition part(p.bs, 4);

  auto gather = [&](const Chol3dOptions& opt, RunResult* res_out) {
    CholeskyFactors gathered(p.bs);
    std::mutex mu;
    RunResult res = run_ranks(16, kModel, [&](sim::Comm& world) {
      auto grid = ProcessGrid3D::create(world, 2, 2, 4);
      DistCholFactors F = make_3d_chol_factors(p.bs, grid, part, p.Ap);
      factorize_3d_cholesky(F, grid, part, opt);
      auto full = gather_3d_cholesky(F, world, grid, part);
      if (full.has_value()) {
        const std::lock_guard<std::mutex> lock(mu);
        gathered = std::move(*full);
      }
    });
    *res_out = std::move(res);
    return gathered;
  };

  Chol3dOptions dense, sparse;
  sparse.packing = pipeline::ZRedPacking::Sparse;
  RunResult rd, rs;
  const CholeskyFactors fd = gather(dense, &rd);
  const CholeskyFactors fs = gather(sparse, &rs);
  for (index_t i = 0; i < p.bs.n(); ++i)
    for (index_t j = 0; j <= i; ++j)
      ASSERT_EQ(fd.l_entry(i, j), fs.l_entry(i, j))
          << "L(" << i << "," << j << ")";

  EXPECT_GT(rs.total_zred_bytes_saved(), 0);
  EXPECT_LT(rs.total_bytes_sent(CommPlane::Z), rd.total_bytes_sent(CommPlane::Z));
  EXPECT_EQ(rs.total_bytes_sent(CommPlane::Z) + rs.total_zred_bytes_saved(),
            rd.total_bytes_sent(CommPlane::Z));
}

TEST(SparseZReduction, ChunkedAndBlockingPathsMatchBitwise) {
  const Problem p = sparse_test_problem();
  const SupernodalMatrix ref = gather_lu3d(p, 2, 2, 4, {});

  Lu3dOptions chunked;
  chunked.chunk_snodes = 3;
  chunked.packing = pipeline::ZRedPacking::Sparse;
  expect_bitwise_equal(ref, gather_lu3d(p, 2, 2, 4, chunked), p.bs.n());

  Lu3dOptions blocking;
  blocking.async = false;
  blocking.packing = pipeline::ZRedPacking::Sparse;
  expect_bitwise_equal(ref, gather_lu3d(p, 2, 2, 4, blocking), p.bs.n());
}

// ---------------------------------------------------------------------------
// Option validation happens once, in the shared engines, for both variants.
// ---------------------------------------------------------------------------

TEST(PipelineOptions, EngineRejectsInvalidOptionsForBothVariants) {
  const GridGeometry g{8, 8, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 8});
  const Problem p{BlockStructure(A, tree), A.permuted_symmetric(tree.perm())};

  Lu3dOptions bad_lookahead;
  bad_lookahead.lu2d.lookahead = -1;
  EXPECT_THROW(run_lu3d(p, 2, 2, 1, bad_lookahead), Error);

  Chol3dOptions bad_chol;
  bad_chol.chol2d.lookahead = -2;
  EXPECT_THROW(run_chol3d(p, 2, 2, 1, bad_chol), Error);

  Lu3dOptions bad_chunk;
  bad_chunk.chunk_snodes = 0;
  EXPECT_THROW(run_lu3d(p, 2, 2, 2, bad_chunk), Error);

  Chol3dOptions bad_chol_chunk;
  bad_chol_chunk.chunk_snodes = -4;
  EXPECT_THROW(run_chol3d(p, 2, 2, 2, bad_chol_chunk), Error);
}

TEST(PipelineOptions, ValidationMessagesAreActionable) {
  pipeline::PanelOptions po;
  po.lookahead = -3;
  try {
    pipeline::validate_panel_options(po);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("lookahead"), std::string::npos);
  }
  pipeline::ZRedOptions zo;
  zo.chunk_snodes = 0;
  try {
    pipeline::validate_zred_options(zo);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("chunk"), std::string::npos);
  }
}

TEST(PipelineOptions, AliasesShareTheEngineTypes) {
  // The per-variant option names are aliases of the shared pipeline
  // structs, so code written against either name interoperates.
  static_assert(std::is_same_v<Lu2dOptions, pipeline::PanelOptions>);
  static_assert(std::is_same_v<Chol2dOptions, pipeline::PanelOptions>);
  static_assert(std::is_base_of_v<pipeline::ZRedOptions, Lu3dOptions>);
  static_assert(std::is_base_of_v<pipeline::ZRedOptions, Chol3dOptions>);
  Lu3dOptions o;
  o.chunk_snodes = 2;
  const pipeline::ZRedOptions& shared = o;
  EXPECT_EQ(shared.chunk_snodes, 2);
}

TEST(PipelineOptions, ZeroLookaheadStillFactorsCorrectly) {
  const Problem p = sparse_test_problem();
  const SupernodalMatrix ref = gather_lu3d(p, 2, 2, 4, {});
  Lu3dOptions no_la;
  no_la.lu2d.lookahead = 0;
  expect_bitwise_equal(ref, gather_lu3d(p, 2, 2, 4, no_la), p.bs.n());
}

// ---------------------------------------------------------------------------
// Unit coverage for the sparse-packing primitives.
// ---------------------------------------------------------------------------

TEST(SparsePackPrimitives, AllZeroScan) {
  std::vector<real_t> x(37, 0.0);
  EXPECT_TRUE(dense::all_zero(x.data(), x.size()));
  EXPECT_TRUE(dense::all_zero(x.data(), 0));
  x[36] = 1e-300;
  EXPECT_FALSE(dense::all_zero(x.data(), x.size()));
  x[36] = 0.0;
  x[0] = -0.0;
  EXPECT_TRUE(dense::all_zero(x.data(), x.size()));  // signed zero is zero
  x[17] = -2.5;
  EXPECT_FALSE(dense::all_zero(x.data(), x.size()));
}

TEST(SparsePackPrimitives, TriangularBlockZeroScanIgnoresUpperPart) {
  // A 3x3 column-major "diagonal" block: only the lower triangle travels,
  // so garbage in the strict upper part must not make the block present.
  const index_t n = 3;
  std::vector<real_t> blk(static_cast<std::size_t>(n * n), 0.0);
  blk[3] = 99.0;  // (0,1): strictly upper
  blk[6] = -1.0;  // (0,2): strictly upper
  EXPECT_TRUE(pipeline::block_all_zero(blk, n));
  blk[4] = 0.5;  // (1,1): on the diagonal
  EXPECT_FALSE(pipeline::block_all_zero(blk, n));
}

}  // namespace
}  // namespace slu3d
