// Tests for the extended generator set (anisotropic, Helmholtz) and the
// solver behaviours they are designed to stress.
#include <gtest/gtest.h>

#include <cmath>

#include "numeric/cholesky.hpp"
#include "numeric/solver.hpp"
#include "order/nested_dissection.hpp"
#include "sparse/generators.hpp"
#include "support/rng.hpp"
#include "symbolic/etree.hpp"

namespace slu3d {
namespace {

TEST(Anisotropic, WeightsMatchEpsilon) {
  const GridGeometry g{6, 6, 1};
  const CsrMatrix A = grid2d_anisotropic(g, 0.01);
  EXPECT_DOUBLE_EQ(A.at(g.vertex(2, 2, 0), g.vertex(3, 2, 0)), -0.01);
  EXPECT_DOUBLE_EQ(A.at(g.vertex(2, 2, 0), g.vertex(2, 3, 0)), -1.0);
  EXPECT_TRUE(A.pattern_is_symmetric());
}

TEST(Anisotropic, SolvesAccurately) {
  const GridGeometry g{20, 20, 1};
  for (real_t eps : {1e-3, 1.0, 1e3}) {
    const CsrMatrix A = grid2d_anisotropic(g, eps);
    const SparseLuSolver solver(A);
    const auto n = static_cast<std::size_t>(A.n_rows());
    Rng rng(141);
    std::vector<real_t> xref(n), b(n), x(n);
    for (auto& v : xref) v = rng.uniform(-1, 1);
    A.spmv(xref, b);
    const auto rep = solver.solve(b, x);
    EXPECT_LT(rep.final_residual_norm, 1e-12) << "eps = " << eps;
  }
}

TEST(Helmholtz, ShiftMakesItIndefiniteButSolvable) {
  const GridGeometry g{16, 16, 1};
  // Shift well inside the spectrum: indefinite, still nonsingular for a
  // generic shift.
  const CsrMatrix A = grid2d_helmholtz(g, 1.37);
  // Verify indefiniteness indirectly: Cholesky must refuse...
  EXPECT_THROW(SparseCholeskySolver{A}, Error);
  // ...but LU with refinement solves it.
  SolverOptions opt;
  opt.refinement_steps = 3;
  const SparseLuSolver solver(A, opt);
  const auto n = static_cast<std::size_t>(A.n_rows());
  Rng rng(143);
  std::vector<real_t> xref(n), b(n), x(n);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  A.spmv(xref, b);
  const auto rep = solver.solve(b, x);
  EXPECT_LT(rep.final_residual_norm, 1e-10);
}

TEST(Helmholtz, ZeroShiftIsTheLaplacian) {
  const GridGeometry g{5, 4, 1};
  const CsrMatrix H = grid2d_helmholtz(g, 0.0);
  const CsrMatrix L = grid2d_laplacian(g, Stencil2D::FivePoint, 0.0);
  for (index_t i = 0; i < H.n_rows(); ++i)
    for (index_t j : H.row_cols(i)) EXPECT_DOUBLE_EQ(H.at(i, j), L.at(i, j));
}

TEST(Anisotropic, FillStaysBoundedAcrossAnisotropy) {
  // Ordering quality should not collapse under anisotropy: fill within a
  // small factor of the isotropic case.
  const GridGeometry g{24, 24, 1};
  const offset_t iso = scalar_factor_nnz(
      grid2d_anisotropic(g, 1.0).permuted_symmetric(
          nested_dissection(grid2d_anisotropic(g, 1.0), {.leaf_size = 16})
              .perm()));
  const CsrMatrix Aeps = grid2d_anisotropic(g, 1e-4);
  const offset_t aniso = scalar_factor_nnz(Aeps.permuted_symmetric(
      nested_dissection(Aeps, {.leaf_size = 16}).perm()));
  EXPECT_LT(aniso, 3 * iso);
}

}  // namespace
}  // namespace slu3d
