#include <gtest/gtest.h>

#include "lu3d/solver3d.hpp"
#include <cmath>

#include "sparse/generators.hpp"
#include "support/rng.hpp"

namespace slu3d {
namespace {

TEST(Solver3d, EndToEndPlanar) {
  const GridGeometry g{14, 14, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const auto n = static_cast<std::size_t>(A.n_rows());
  Rng rng(51);
  std::vector<real_t> xref(n), b(n), x(n);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  A.spmv(xref, b);

  Solver3dOptions opt;
  opt.Px = 2;
  opt.Py = 2;
  opt.Pz = 4;
  opt.geometry = g;
  const Solver3dReport rep = solve_distributed_3d(A, b, x, opt);

  EXPECT_LT(rep.residual, 1e-12);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-7);
  EXPECT_GT(rep.factor_time, 0);
  EXPECT_GT(rep.solve_time, 0);
  EXPECT_GT(rep.flops, 0);
  EXPECT_GT(rep.w_fact, 0);
  EXPECT_GT(rep.w_red, 0);  // Pz > 1 implies z traffic
  // Solve-phase communication is reported separately from the factor
  // phase; Pz > 1 routes solve contributions across grids (Z plane).
  EXPECT_GT(rep.w_solve_xy, 0);
  EXPECT_GT(rep.w_solve_z, 0);
  EXPECT_GT(rep.msg_solve_xy, 0);
  EXPECT_GT(rep.msg_solve_z, 0);
  EXPECT_GE(rep.mem_total, rep.mem_max);
}

TEST(Solver3d, Pz1IsPure2d) {
  const GridGeometry g{10, 10, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const auto n = static_cast<std::size_t>(A.n_rows());
  std::vector<real_t> b(n, 1.0), x(n);
  Solver3dOptions opt;
  opt.Px = 2;
  opt.Py = 3;
  opt.Pz = 1;
  const auto rep = solve_distributed_3d(A, b, x, opt);
  EXPECT_LT(rep.residual, 1e-13);
  EXPECT_EQ(rep.w_red, 0);
  // The solve split is reported independently of the factor phase: even
  // with w_red == 0 here, the solve's own counters are populated.
  EXPECT_GT(rep.msg_solve_xy, 0);
}

TEST(Solver3d, ReportsReplicationMemoryGrowth) {
  const GridGeometry g{12, 12, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const auto n = static_cast<std::size_t>(A.n_rows());
  std::vector<real_t> b(n, 1.0), x(n);

  Solver3dOptions o1;
  o1.Px = 4;
  o1.Py = 2;
  o1.Pz = 1;
  o1.geometry = g;
  Solver3dOptions o4 = o1;
  o4.Px = 2;
  o4.Py = 1;
  o4.Pz = 4;
  const auto r1 = solve_distributed_3d(A, b, x, o1);
  const auto r4 = solve_distributed_3d(A, b, x, o4);
  EXPECT_GT(r4.mem_total, r1.mem_total);  // replication costs memory
  EXPECT_LT(r4.w_fact, r1.w_fact);        // ...and buys XY volume
}

TEST(Solver3d, RejectsBadConfigs) {
  const GridGeometry g{6, 6, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const auto n = static_cast<std::size_t>(A.n_rows());
  std::vector<real_t> b(n, 1.0), x(n);
  Solver3dOptions opt;
  opt.Pz = 3;  // not a power of two
  EXPECT_THROW(solve_distributed_3d(A, b, x, opt), Error);
}

TEST(Solver3d, DistributedRefinementTightensResidual) {
  // Badly scaled system: without refinement the static-pivot solve leaves
  // a visible residual; distributed refinement must tighten it.
  const GridGeometry g{10, 10, 1};
  CooMatrix coo(100, 100);
  {
    const CsrMatrix L = grid2d_laplacian(g, Stencil2D::FivePoint, 1e-6);
    Rng rng(119);
    std::vector<real_t> scale(100);
    for (auto& s : scale) s = std::pow(10.0, rng.uniform(-3, 3));
    for (index_t r = 0; r < 100; ++r) {
      const auto cols = L.row_cols(r);
      const auto vals = L.row_vals(r);
      for (std::size_t k = 0; k < cols.size(); ++k)
        coo.add(r, cols[k],
                vals[k] * scale[static_cast<std::size_t>(r)] *
                    scale[static_cast<std::size_t>(cols[k])]);
    }
  }
  const CsrMatrix A = CsrMatrix::from_coo(coo);
  const auto n = static_cast<std::size_t>(A.n_rows());
  Rng rng(121);
  std::vector<real_t> xref(n), b(n), x0(n), x2(n);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  A.spmv(xref, b);

  Solver3dOptions opt;
  opt.Px = 2;
  opt.Py = 2;
  opt.Pz = 2;
  opt.refinement_steps = 0;
  const auto rep0 = solve_distributed_3d(A, b, x0, opt);
  opt.refinement_steps = 3;
  const auto rep2 = solve_distributed_3d(A, b, x2, opt);
  EXPECT_LE(rep2.residual, rep0.residual * 1.0000001);
  EXPECT_LT(rep2.residual, 1e-12);
}

TEST(Solver3d, InSimulationDistributedAnalysis) {
  const GridGeometry g{12, 11, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const auto n = static_cast<std::size_t>(A.n_rows());
  Rng rng(137);
  std::vector<real_t> xref(n), b(n), x(n);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  A.spmv(xref, b);

  Solver3dOptions opt;
  opt.Px = 2;
  opt.Py = 2;
  opt.Pz = 2;
  opt.analysis = AnalysisMode::Distributed;  // analysis runs inside the machine
  opt.nd.leaf_size = 8;
  const auto rep = solve_distributed_3d(A, b, x, opt);
  EXPECT_LT(rep.residual, 1e-12);
  EXPECT_GT(rep.flops, 0);
  EXPECT_GT(rep.t_analysis, 0);
  EXPECT_GT(rep.w_analysis, 0);
  EXPECT_GT(rep.msg_analysis, 0);
  EXPECT_GE(rep.factor_time, rep.t_analysis);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-7);
}

TEST(Solver3d, AutomaticPzSelection) {
  // Pz = 0: the driver picks a power-of-two Pz from the §IV model given
  // the total rank budget (passed as Px*Py).
  const GridGeometry g{16, 16, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const auto n = static_cast<std::size_t>(A.n_rows());
  std::vector<real_t> b(n, 1.0), x(n);
  Solver3dOptions opt;
  opt.Px = 4;
  opt.Py = 8;  // total budget: 32 ranks
  opt.Pz = 0;
  opt.geometry = g;
  const auto rep = solve_distributed_3d(A, b, x, opt);
  EXPECT_LT(rep.residual, 1e-13);
  EXPECT_GT(rep.w_red, 0);  // it chose Pz > 1 for this planar problem
}

TEST(Solver3d, SingularMatrixAbortsCleanly) {
  // A numerically singular input must surface as an Error, not a hang:
  // the failing rank's exception aborts the whole simulated run. The
  // matrix is a healthy path graph plus an exactly rank-deficient 2x2
  // component [[1, 2], [2, 4]] — elimination hits an exact zero pivot.
  const index_t nn = 34;
  CooMatrix coo(nn, nn);
  for (index_t i = 0; i + 1 < nn - 2; ++i) {
    coo.add(i, i + 1, -1.0);
    coo.add(i + 1, i, -1.0);
  }
  for (index_t i = 0; i < nn - 2; ++i) coo.add(i, i, 4.0);
  coo.add(nn - 2, nn - 2, 1.0);
  coo.add(nn - 2, nn - 1, 2.0);
  coo.add(nn - 1, nn - 2, 2.0);
  coo.add(nn - 1, nn - 1, 4.0);
  const CsrMatrix A = CsrMatrix::from_coo(coo);
  const auto n = static_cast<std::size_t>(A.n_rows());
  std::vector<real_t> b(n, 1.0), x(n);
  Solver3dOptions opt;
  opt.Px = 2;
  opt.Py = 1;
  opt.Pz = 2;
  opt.nd.leaf_size = 4;
  // Depending on where elimination hits the zero pivot this throws from a
  // rank (propagated by run_ranks); it must never deadlock.
  EXPECT_THROW(solve_distributed_3d(A, b, x, opt), Error);
}

}  // namespace
}  // namespace slu3d
