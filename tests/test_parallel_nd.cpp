#include <gtest/gtest.h>

#include <mutex>

#include "lu3d/solver3d.hpp"
#include "order/parallel_nd.hpp"
#include "sparse/generators.hpp"
#include "support/rng.hpp"
#include "symbolic/block_structure.hpp"

namespace slu3d {
namespace {

using sim::MachineModel;
using sim::run_ranks;

const MachineModel kModel{};

void expect_valid_tree(const CsrMatrix& A, const SeparatorTree& tree) {
  EXPECT_TRUE(is_permutation(tree.perm()));
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm()).symmetrized_pattern();
  std::vector<int> owner(static_cast<std::size_t>(tree.n()), -1);
  for (int v = 0; v < tree.n_nodes(); ++v)
    for (index_t c = tree.node(v).sep_first; c < tree.node(v).sep_last; ++c)
      owner[static_cast<std::size_t>(c)] = v;
  auto anc = [&](int a, int b) {
    return tree.node(a).subtree_first <= tree.node(b).subtree_first &&
           tree.node(b).sep_last <= tree.node(a).sep_last;
  };
  for (index_t i = 0; i < Ap.n_rows(); ++i)
    for (index_t j : Ap.row_cols(i)) {
      if (i == j) continue;
      const int a = owner[static_cast<std::size_t>(i)];
      const int b = owner[static_cast<std::size_t>(j)];
      ASSERT_TRUE(anc(a, b) || anc(b, a));
    }
}

class ParallelNdRanks : public ::testing::TestWithParam<int> {};

TEST_P(ParallelNdRanks, AllRanksGetTheSameValidTree) {
  const int P = GetParam();
  const GridGeometry g{14, 13, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);

  std::vector<std::vector<index_t>> perms(static_cast<std::size_t>(P));
  std::mutex mu;
  run_ranks(P, kModel, [&](sim::Comm& world) {
    const SeparatorTree tree =
        parallel_nested_dissection(A, world, {.leaf_size = 8});
    {
      const std::lock_guard<std::mutex> lock(mu);
      perms[static_cast<std::size_t>(world.rank())].assign(tree.perm().begin(),
                                                           tree.perm().end());
    }
    if (world.rank() == 0) expect_valid_tree(A, tree);
  });
  for (int r = 1; r < P; ++r) EXPECT_EQ(perms[static_cast<std::size_t>(r)],
                                        perms[0]);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ParallelNdRanks,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

TEST(ParallelNd, HandlesDisconnectedGraphs) {
  CooMatrix coo(40, 40);
  for (index_t c = 0; c < 4; ++c)
    for (index_t i = 0; i < 9; ++i) {
      coo.add(c * 10 + i, c * 10 + i + 1, -1.0);
      coo.add(c * 10 + i + 1, c * 10 + i, -1.0);
    }
  for (index_t i = 0; i < 40; ++i) coo.add(i, i, 3.0);
  const CsrMatrix A = CsrMatrix::from_coo(coo);
  run_ranks(4, kModel, [&](sim::Comm& world) {
    const SeparatorTree tree =
        parallel_nested_dissection(A, world, {.leaf_size = 4});
    if (world.rank() == 0) expect_valid_tree(A, tree);
  });
}

TEST(ParallelNd, DrivesTheFullDistributedPipeline) {
  // Order in parallel, then factor + solve in 3D: the complete SuperLU_DIST
  // pipeline with no serial ordering step outside the simulated machine.
  const GridGeometry g{12, 12, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const auto n = static_cast<std::size_t>(A.n_rows());
  Rng rng(131);
  std::vector<real_t> xref(n), b(n);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  A.spmv(xref, b);

  std::vector<real_t> x(n, 0.0);
  std::mutex mu;
  run_ranks(8, kModel, [&](sim::Comm& world) {
    const SeparatorTree tree =
        parallel_nested_dissection(A, world, {.leaf_size = 8});
    const BlockStructure bs(A, tree);
    const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
    const ForestPartition part(bs, 2);
    const auto pinv = invert_permutation(tree.perm());

    auto grid = sim::ProcessGrid3D::create(world, 2, 2, 2);
    Dist2dFactors F = make_3d_factors(bs, grid, part, Ap);
    factorize_3d(F, grid, part, {});
    std::vector<real_t> pb(n);
    for (std::size_t i = 0; i < n; ++i)
      pb[static_cast<std::size_t>(pinv[i])] = b[i];
    solve_3d(F, world, grid, part, pb);
    if (world.rank() == 0) {
      const std::lock_guard<std::mutex> lock(mu);
      for (std::size_t i = 0; i < n; ++i)
        x[i] = pb[static_cast<std::size_t>(pinv[i])];
    }
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-8);
}

TEST(ParallelNd, MatchesSerialTopSeparatorChoice) {
  // The parallel recursion makes the same separator choices as the serial
  // code (the leader runs the identical splitter), so the trees coincide
  // when the serial recursion would assign work the same way.
  const GridGeometry g{10, 10, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree serial = nested_dissection(A, {.leaf_size = 8});
  run_ranks(4, kModel, [&](sim::Comm& world) {
    const SeparatorTree par =
        parallel_nested_dissection(A, world, {.leaf_size = 8});
    // Same top separator: the root block of both trees covers the same
    // column range and the same vertices.
    const auto& sr = serial.node(serial.root());
    const auto& pr = par.node(par.root());
    EXPECT_EQ(pr.sep_last - pr.sep_first, sr.sep_last - sr.sep_first);
    std::vector<index_t> sv(serial.perm().begin() + sr.sep_first,
                            serial.perm().begin() + sr.sep_last);
    std::vector<index_t> pv(par.perm().begin() + pr.sep_first,
                            par.perm().begin() + pr.sep_last);
    std::sort(sv.begin(), sv.end());
    std::sort(pv.begin(), pv.end());
    EXPECT_EQ(sv, pv);
  });
}

}  // namespace
}  // namespace slu3d
