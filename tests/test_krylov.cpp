#include <gtest/gtest.h>

#include <cmath>

#include "numeric/cholesky.hpp"
#include "numeric/krylov.hpp"
#include "numeric/solver.hpp"
#include "sparse/generators.hpp"
#include "support/rng.hpp"

namespace slu3d {
namespace {

CsrMatrix perturbed(const CsrMatrix& A, real_t eps, std::uint64_t seed) {
  Rng rng(seed);
  CooMatrix coo(A.n_rows(), A.n_cols());
  for (index_t r = 0; r < A.n_rows(); ++r) {
    const auto cols = A.row_cols(r);
    const auto vals = A.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k)
      coo.add(r, cols[k], vals[k] * (1.0 + eps * rng.uniform(-1, 1)));
  }
  return CsrMatrix::from_coo(coo);
}

TEST(Pcg, UnpreconditionedConvergesOnSpd) {
  const GridGeometry g{12, 12, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const auto n = static_cast<std::size_t>(A.n_rows());
  Rng rng(71);
  std::vector<real_t> xref(n), b(n), x(n, 0.0);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  A.spmv(xref, b);
  const auto rep = pcg(A, b, x, identity_preconditioner());
  EXPECT_TRUE(rep.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-8);
}

TEST(Pcg, ExactFactorPreconditionerConvergesInOneIteration) {
  const GridGeometry g{10, 14, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SparseCholeskySolver chol(A);
  const auto n = static_cast<std::size_t>(A.n_rows());
  std::vector<real_t> b(n, 1.0), x(n, 0.0), tmp(n);
  auto precond = [&](std::span<real_t> v) {
    std::copy(v.begin(), v.end(), tmp.begin());
    chol.solve(tmp, v);
  };
  const auto rep = pcg(A, b, x, precond);
  EXPECT_TRUE(rep.converged);
  EXPECT_LE(rep.iterations, 2);  // exact preconditioner: immediate
}

TEST(Pcg, ApproximateFactorPreconditionerBeatsPlainCg) {
  // Factor a perturbed copy of A once, iterate on the true A: the classic
  // "direct solver as preconditioner" pattern.
  const GridGeometry g{16, 16, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint, 1e-3);
  const CsrMatrix M = perturbed(A, 0.05, 5);
  const SparseLuSolver msolver(M);
  const auto n = static_cast<std::size_t>(A.n_rows());
  Rng rng(73);
  std::vector<real_t> xref(n), b(n), x0(n, 0.0), x1(n, 0.0), tmp(n);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  A.spmv(xref, b);

  const auto plain = pcg(A, b, x0, identity_preconditioner());
  auto precond = [&](std::span<real_t> v) {
    std::copy(v.begin(), v.end(), tmp.begin());
    msolver.solve(tmp, v);
  };
  const auto pre = pcg(A, b, x1, precond);
  EXPECT_TRUE(pre.converged);
  EXPECT_LT(pre.iterations, plain.iterations / 2);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x1[i], xref[i], 1e-7);
}

TEST(Bicgstab, SolvesNonsymmetricSystem) {
  const GridGeometry g{12, 10, 1};
  const CsrMatrix A = grid2d_convection_diffusion(g, 0.7);
  const auto n = static_cast<std::size_t>(A.n_rows());
  Rng rng(79);
  std::vector<real_t> xref(n), b(n), x(n, 0.0), tmp(n);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  A.spmv(xref, b);

  const CsrMatrix M = perturbed(A, 0.02, 7);
  const SparseLuSolver msolver(M);
  auto precond = [&](std::span<real_t> v) {
    std::copy(v.begin(), v.end(), tmp.begin());
    msolver.solve(tmp, v);
  };
  const auto rep = bicgstab(A, b, x, precond);
  EXPECT_TRUE(rep.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-7);
}

TEST(Krylov, ZeroRhsReturnsZero) {
  const GridGeometry g{6, 6, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const auto n = static_cast<std::size_t>(A.n_rows());
  std::vector<real_t> b(n, 0.0), x(n, 3.0);
  const auto rep = pcg(A, b, x, identity_preconditioner());
  EXPECT_TRUE(rep.converged);
  for (real_t v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Krylov, ReportsNonConvergenceHonestly) {
  const GridGeometry g{24, 24, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint, 1e-6);
  const auto n = static_cast<std::size_t>(A.n_rows());
  std::vector<real_t> b(n, 1.0), x(n, 0.0);
  KrylovOptions opt;
  opt.max_iterations = 3;  // far too few
  const auto rep = pcg(A, b, x, identity_preconditioner(), opt);
  EXPECT_FALSE(rep.converged);
  EXPECT_GT(rep.relative_residual, 1e-12);
}

}  // namespace
}  // namespace slu3d
