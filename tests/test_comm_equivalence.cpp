// Communication-schedule equivalence harness. The pipeline engines now have
// three orthogonal schedule/wire knobs per plane — blocking vs async,
// PanelPacking (XY panel broadcasts), ZRedPacking + chunking (Z ancestor
// reduction) — and every combination must factor to the *same numbers* as
// the dense/blocking baseline while never moving more bytes on either
// plane. This file sweeps variant x grid shape x lookahead x packing x
// chunking and asserts exactly that, subsuming the one-off pins that
// test_pipeline.cpp accumulated per PR:
//  - factors compare equal entry-for-entry against a *Z-schedule-matched*
//    dense reference (operator==, so the +-0.0 produced by skipping an
//    all-zero Schur contribution is equal to the -0.0 the dense GEMM would
//    have added). Wire-format packing and the 2D panel schedule (lookahead,
//    blocking vs async broadcasts) never change the numbers; the Z *drain*
//    schedule (async z-reduction x chunk_snodes) legitimately does, because
//    it interleaves the z-axis additions with local Schur updates in a
//    different order — so each sweep point is compared against the dense
//    run with the same (z-async, chunk) signature,
//  - XY received volume is monotonically non-increasing vs. the baseline:
//    exactly equal for dense panel packing (async/blocking share the same
//    binomial trees), strictly smaller under sparse panel packing,
//  - Z received volume reconciles exactly against the zred_saved counter
//    (which nets out the bitmap-frame overhead and is allowed to go
//    slightly negative on mostly-dense reduction levels),
//  - the RankStats/RunResult savings counters agree with which packing ran.
// It also pins the seed golden fig9 counters under an *explicitly* Dense
// panel packing (the default must stay Dense — enforced at compile time),
// and the fig10 acceptance bar: >= 15% of the panel-broadcast payload
// eliminated on a K2D5pt-class matrix at Pz = 4.
#include <gtest/gtest.h>

#include <cstddef>
#include <mutex>
#include <string>

#include "lu3d/factor3d.hpp"
#include "lu3d/factor3d_chol.hpp"
#include "order/nested_dissection.hpp"
#include "sparse/generators.hpp"

namespace slu3d {
namespace {

using sim::CommPlane;
using sim::MachineModel;
using sim::ProcessGrid3D;
using sim::RunResult;
using sim::run_ranks;

const MachineModel kModel{};

struct Problem {
  BlockStructure bs;
  CsrMatrix Ap;
};

Problem fig9_problem(bool planar) {
  if (planar) {
    const GridGeometry g{48, 48, 1};
    const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
    const SeparatorTree tree = geometric_nd(g, {.leaf_size = 16});
    return {BlockStructure(A, tree), A.permuted_symmetric(tree.perm())};
  }
  const GridGeometry g{12, 12, 12};
  const CsrMatrix A = grid3d_laplacian(g, Stencil3D::SevenPoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 24});
  return {BlockStructure(A, tree), A.permuted_symmetric(tree.perm())};
}

/// One point of the sweep: every schedule/wire knob of both planes.
struct Knobs {
  const char* name;
  int lookahead;
  bool async;
  pipeline::PanelPacking panel;
  pipeline::ZRedPacking zred;
  int chunk;
};

/// The reference every sweep point is compared against: blocking schedule,
/// dense wire format on both planes.
constexpr Knobs kBaseline{"blocking_dense_la8", 8, false,
                          pipeline::PanelPacking::Dense,
                          pipeline::ZRedPacking::Dense, 1};

constexpr Knobs kSweep[] = {
    {"async_dense_la8", 8, true, pipeline::PanelPacking::Dense,
     pipeline::ZRedPacking::Dense, 1},
    {"async_dense_la0", 0, true, pipeline::PanelPacking::Dense,
     pipeline::ZRedPacking::Dense, 1},
    {"async_sparsepanel_la0", 0, true, pipeline::PanelPacking::Sparse,
     pipeline::ZRedPacking::Dense, 1},
    {"async_sparsepanel_la8", 8, true, pipeline::PanelPacking::Sparse,
     pipeline::ZRedPacking::Dense, 1},
    {"blocking_sparsepanel_la8", 8, false, pipeline::PanelPacking::Sparse,
     pipeline::ZRedPacking::Dense, 1},
    {"async_sparsezred_chunk2_la8", 8, true, pipeline::PanelPacking::Dense,
     pipeline::ZRedPacking::Sparse, 2},
    {"async_allsparse_chunk3_la8", 8, true, pipeline::PanelPacking::Sparse,
     pipeline::ZRedPacking::Sparse, 3},
    {"async_targetedpanel_la8", 8, true, pipeline::PanelPacking::Targeted,
     pipeline::ZRedPacking::Dense, 1},
    {"async_targetedpanel_la0", 0, true, pipeline::PanelPacking::Targeted,
     pipeline::ZRedPacking::Dense, 1},
    {"blocking_targetedpanel_la8", 8, false, pipeline::PanelPacking::Targeted,
     pipeline::ZRedPacking::Dense, 1},
    {"async_targetedzred_chunk2_la8", 8, true, pipeline::PanelPacking::Dense,
     pipeline::ZRedPacking::Targeted, 2},
    {"blocking_targetedzred_la8", 8, false, pipeline::PanelPacking::Dense,
     pipeline::ZRedPacking::Targeted, 1},
    {"async_alltargeted_chunk3_la8", 8, true, pipeline::PanelPacking::Targeted,
     pipeline::ZRedPacking::Targeted, 3},
};

Lu3dOptions lu_options(const Knobs& k) {
  Lu3dOptions o;
  o.lu2d.lookahead = k.lookahead;
  o.lu2d.async = k.async;
  o.lu2d.packing = k.panel;
  o.async = k.async;
  o.packing = k.zred;
  o.chunk_snodes = k.chunk;
  return o;
}

Chol3dOptions chol_options(const Knobs& k) {
  Chol3dOptions o;
  o.chol2d.lookahead = k.lookahead;
  o.chol2d.async = k.async;
  o.chol2d.packing = k.panel;
  o.async = k.async;
  o.packing = k.zred;
  o.chunk_snodes = k.chunk;
  return o;
}

struct LuRun {
  SupernodalMatrix F;
  RunResult res;
};

/// `gather` pulls the factors back to rank 0 *inside* the simulated run, so
/// the gather traffic is part of the counters. It is identical across all
/// sweep points of one problem/shape (the factors are identical), so it
/// cancels out of every relative comparison — but the seed golden counters
/// were pinned without it, so the golden pin runs with gather = false.
LuRun run_lu(const Problem& p, int Px, int Py, int Pz, const Knobs& k,
             bool gather = true) {
  const ForestPartition part(p.bs, Pz);
  LuRun out{SupernodalMatrix(p.bs), {}};
  std::mutex mu;
  const Lu3dOptions opt = lu_options(k);
  out.res = run_ranks(Px * Py * Pz, kModel, [&](sim::Comm& world) {
    auto grid = ProcessGrid3D::create(world, Px, Py, Pz);
    Dist2dFactors F = make_3d_factors(p.bs, grid, part, p.Ap);
    factorize_3d(F, grid, part, opt);
    if (!gather) return;
    auto full = gather_3d_to_root(F, world, grid, part);
    if (full.has_value()) {
      const std::lock_guard<std::mutex> lock(mu);
      out.F = std::move(*full);
    }
  });
  return out;
}

struct CholRun {
  CholeskyFactors F;
  RunResult res;
};

CholRun run_chol(const Problem& p, int Px, int Py, int Pz, const Knobs& k,
                 bool gather = true) {
  const ForestPartition part(p.bs, Pz);
  CholRun out{CholeskyFactors(p.bs), {}};
  std::mutex mu;
  const Chol3dOptions opt = chol_options(k);
  out.res = run_ranks(Px * Py * Pz, kModel, [&](sim::Comm& world) {
    auto grid = ProcessGrid3D::create(world, Px, Py, Pz);
    DistCholFactors F = make_3d_chol_factors(p.bs, grid, part, p.Ap);
    factorize_3d_cholesky(F, grid, part, opt);
    if (!gather) return;
    auto full = gather_3d_cholesky(F, world, grid, part);
    if (full.has_value()) {
      const std::lock_guard<std::mutex> lock(mu);
      out.F = std::move(*full);
    }
  });
  return out;
}

/// Counts elementwise (operator==) mismatches between two factor storages,
/// remembering the first for the failure message. Whole-storage compare is
/// O(nnz), cheap enough to run the full sweep under the sanitizers.
struct Mismatch {
  std::size_t count = 0;
  std::string first;

  void compare(std::span<const real_t> a, std::span<const real_t> b,
               const char* what, int s) {
    if (a.size() != b.size()) {
      ++count;
      if (first.empty())
        first = std::string(what) + " snode " + std::to_string(s) +
                ": size mismatch";
      return;
    }
    for (std::size_t i = 0; i < a.size(); ++i)
      if (a[i] != b[i]) {
        ++count;
        if (first.empty())
          first = std::string(what) + " snode " + std::to_string(s) + " idx " +
                  std::to_string(i) + ": " + std::to_string(a[i]) +
                  " != " + std::to_string(b[i]);
      }
  }
};

void expect_factors_equal(const SupernodalMatrix& a, const SupernodalMatrix& b) {
  Mismatch mm;
  for (int s = 0; s < a.structure().n_snodes(); ++s) {
    mm.compare(a.diag(s), b.diag(s), "diag", s);
    mm.compare(a.lpanel(s), b.lpanel(s), "L", s);
    mm.compare(a.upanel(s), b.upanel(s), "U", s);
  }
  EXPECT_EQ(mm.count, 0u) << "first mismatch: " << mm.first;
}

void expect_factors_equal(const CholeskyFactors& a, const CholeskyFactors& b) {
  Mismatch mm;
  for (int s = 0; s < a.structure().n_snodes(); ++s) {
    mm.compare(a.diag(s), b.diag(s), "diag", s);
    mm.compare(a.lpanel(s), b.lpanel(s), "L", s);
  }
  EXPECT_EQ(mm.count, 0u) << "first mismatch: " << mm.first;
}

struct PlaneTotals {
  offset_t bytes[2] = {0, 0};
  offset_t msgs[2] = {0, 0};
};

PlaneTotals plane_totals(const RunResult& res) {
  PlaneTotals t;
  for (const auto& r : res.ranks)
    for (std::size_t pl = 0; pl < 2; ++pl) {
      t.bytes[pl] += r.bytes_received[pl];
      t.msgs[pl] += r.messages_received[pl];
    }
  return t;
}

/// The per-sweep-point assertions shared by both variants.
void check_against_baseline(const Knobs& k, int Pz, const RunResult& base,
                            const RunResult& v) {
  const PlaneTotals bt = plane_totals(base);
  const PlaneTotals vt = plane_totals(v);
  // XY is monotone non-increasing: no combination may move more panel
  // bytes than the baseline.
  EXPECT_LE(vt.bytes[0], bt.bytes[0]) << "XY volume regressed";
  // Z is exact-accounted: the zred_saved counter reconciles the sparse
  // volume to the dense one to the byte (and may be slightly *negative* on
  // problems whose reduction levels are mostly dense — the per-chunk
  // bitmap overhead is included in the counter by design, so the identity
  // is the invariant, not strict shrinkage).
  EXPECT_EQ(vt.bytes[1] + v.total_zred_bytes_saved(), bt.bytes[1])
      << "Z volume not reconciled by zred_saved";
  if (k.panel == pipeline::PanelPacking::Dense) {
    // Dense XY wire format is schedule-invariant: async/blocking and any
    // lookahead share the same binomial trees, byte for byte.
    EXPECT_EQ(vt.bytes[0], bt.bytes[0]);
    EXPECT_EQ(vt.msgs[0], bt.msgs[0]);
    EXPECT_EQ(v.total_panel_dense_bytes(), 0);
    EXPECT_EQ(v.total_panel_saved_bytes(), 0);
    EXPECT_EQ(v.total_panel_saved_msgs(), 0);
  } else if (k.panel == pipeline::PanelPacking::Targeted) {
    // One-sided footprint puts: headers are uncharged and no presence
    // frame travels, so the saved counters reconcile the targeted wire to
    // the dense equivalent exactly — to the byte AND to the message — on
    // the XY plane (diag broadcasts and the Cholesky dense relay role are
    // identical on both sides of the identity and cancel).
    EXPECT_LT(vt.bytes[0], bt.bytes[0]);
    EXPECT_GT(v.total_panel_dense_bytes(), 0);
    EXPECT_GT(v.total_panel_saved_bytes(), 0);
    EXPECT_LT(v.total_panel_saved_bytes(), v.total_panel_dense_bytes());
    EXPECT_EQ(vt.bytes[0] + v.total_panel_saved_bytes(), bt.bytes[0])
        << "XY volume not reconciled by panel_saved";
    EXPECT_EQ(vt.msgs[0] + v.total_panel_saved_msgs(), bt.msgs[0])
        << "XY messages not reconciled by panel_saved_msgs";
  } else {
    // Ragged ancestor panels are 10-25% zero scalars on the fig9 problems,
    // well above the 1/64 bitmap-frame overhead: strict XY win.
    EXPECT_LT(vt.bytes[0], bt.bytes[0]);
    EXPECT_GT(v.total_panel_dense_bytes(), 0);
    EXPECT_GT(v.total_panel_saved_bytes(), 0);
    EXPECT_LT(v.total_panel_saved_bytes(), v.total_panel_dense_bytes());
  }
  if (k.zred == pipeline::ZRedPacking::Dense) {
    EXPECT_EQ(v.total_zred_bytes_saved(), 0);
    EXPECT_EQ(v.total_zred_blocks_total(), 0);
  } else if (Pz > 1) {
    EXPECT_GT(v.total_zred_blocks_total(), 0);  // the packer engaged
  }
}

// ---------------------------------------------------------------------------
// The sweep: every knob combination on every fig9 grid shape, both variants.
// ---------------------------------------------------------------------------

struct ShapeCase {
  const char* cls;
  int Px, Py, Pz;
};

constexpr ShapeCase kShapes[] = {
    {"planar", 4, 4, 1},    {"planar", 2, 4, 2}, {"planar", 2, 2, 4},
    {"planar", 1, 2, 8},    {"nonplanar", 2, 2, 4},
};

/// Reference knobs for factor comparison: dense wire format on both planes
/// with the sweep point's Z drain schedule (z-async, chunk). Everything a
/// sweep point changes on top of its reference — panel packing, zred
/// packing, lookahead, 2D blocking vs async — must be bitwise-neutral.
constexpr Knobs factor_reference(const Knobs& k) {
  return {"dense_reference", 8, k.async, pipeline::PanelPacking::Dense,
          pipeline::ZRedPacking::Dense, k.chunk};
}

constexpr bool same_zsig(const Knobs& a, const Knobs& b) {
  return a.async == b.async && a.chunk == b.chunk;
}

class CommEquivalence : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(CommEquivalence, LuFactorsEqualAndVolumesMonotone) {
  const ShapeCase& c = GetParam();
  const Problem p = fig9_problem(std::string(c.cls) == "planar");
  const LuRun base = run_lu(p, c.Px, c.Py, c.Pz, kBaseline);
  for (const Knobs& k : kSweep) {
    SCOPED_TRACE(k.name);
    const LuRun v = run_lu(p, c.Px, c.Py, c.Pz, k);
    const Knobs ref = factor_reference(k);
    const LuRun& r = same_zsig(k, kBaseline)
                         ? base
                         : run_lu(p, c.Px, c.Py, c.Pz, ref);
    expect_factors_equal(r.F, v.F);
    check_against_baseline(k, c.Pz, base.res, v.res);
  }
}

TEST_P(CommEquivalence, CholFactorsEqualAndVolumesMonotone) {
  const ShapeCase& c = GetParam();
  const Problem p = fig9_problem(std::string(c.cls) == "planar");
  const CholRun base = run_chol(p, c.Px, c.Py, c.Pz, kBaseline);
  for (const Knobs& k : kSweep) {
    SCOPED_TRACE(k.name);
    const CholRun v = run_chol(p, c.Px, c.Py, c.Pz, k);
    const Knobs ref = factor_reference(k);
    const CholRun& r = same_zsig(k, kBaseline)
                           ? base
                           : run_chol(p, c.Px, c.Py, c.Pz, ref);
    expect_factors_equal(r.F, v.F);
    check_against_baseline(k, c.Pz, base.res, v.res);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fig9Shapes, CommEquivalence, ::testing::ValuesIn(kShapes),
    [](const auto& pi) {
      return std::string(pi.param.cls) + "_" + std::to_string(pi.param.Px) +
             "x" + std::to_string(pi.param.Py) + "x" +
             std::to_string(pi.param.Pz);
    });

// ---------------------------------------------------------------------------
// Seed golden pin: dense packing must stay the default, and an explicitly
// Dense run must reproduce the seed fig9 counters bit for bit. (The full
// default-options table lives in test_pipeline.cpp; this re-pins the same
// seed numbers through the new packing knob, so a change to the Dense wire
// format and a change of the default are caught separately.)
// ---------------------------------------------------------------------------

static_assert(pipeline::PanelOptions{}.packing == pipeline::PanelPacking::Dense,
              "dense panel packing must remain the default");
static_assert(pipeline::ZRedOptions{}.packing == pipeline::ZRedPacking::Dense,
              "dense z-reduction packing must remain the default");

TEST(DensePackingGolden, ExplicitDenseReproducesSeedFig9Counters) {
  const Problem p = fig9_problem(true);
  Knobs k = kBaseline;
  k.name = "explicit_dense";
  k.async = true;  // seed counters were pinned with the async default
  // gather = false: the seed table in test_pipeline.cpp measures the
  // factorization only, without the gather-to-root traffic.
  {
    const LuRun r = run_lu(p, 4, 4, 1, k, /*gather=*/false);
    const PlaneTotals t = plane_totals(r.res);
    EXPECT_EQ(t.bytes[0], 3369936);  // seed value, tests/test_pipeline.cpp
    EXPECT_EQ(t.msgs[0], 6840);
    const CholRun c = run_chol(p, 4, 4, 1, k, /*gather=*/false);
    const PlaneTotals ct = plane_totals(c.res);
    EXPECT_EQ(ct.bytes[0], 2753712);
    EXPECT_EQ(ct.msgs[0], 6069);
  }
  {
    const LuRun r = run_lu(p, 2, 2, 4, k, /*gather=*/false);
    const PlaneTotals t = plane_totals(r.res);
    EXPECT_EQ(t.bytes[0], 1123312);
    EXPECT_EQ(t.bytes[1], 100232);
    const CholRun c = run_chol(p, 2, 2, 4, k, /*gather=*/false);
    const PlaneTotals ct = plane_totals(c.res);
    EXPECT_EQ(ct.bytes[0], 917904);
    EXPECT_EQ(ct.bytes[1], 50880);
  }
}

// ---------------------------------------------------------------------------
// The fig10 acceptance bar: on a K2D5pt-class matrix (fig10's planar
// family: five-point grid Laplacian, leaf 32, geometric ND) at Pz = 4,
// sparse panel packing must eliminate at least 15% of the dense-equivalent
// panel-broadcast payload, and the saving must show up both in the
// RunResult aggregates and in the XY totals.
// ---------------------------------------------------------------------------

TEST(CommEquivalence, Fig10ClassPanelSavingsAtLeast15Percent) {
  const GridGeometry g{64, 64, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 32});
  const Problem p{BlockStructure(A, tree), A.permuted_symmetric(tree.perm())};

  Knobs dense = kBaseline;
  dense.name = "dense";
  dense.async = true;
  Knobs sparse = dense;
  sparse.name = "sparsepanel";
  sparse.panel = pipeline::PanelPacking::Sparse;

  const LuRun rd = run_lu(p, 2, 2, 4, dense);
  const LuRun rs = run_lu(p, 2, 2, 4, sparse);
  expect_factors_equal(rd.F, rs.F);

  const auto saved = rs.res.total_panel_saved_bytes();
  const auto dense_eq = rs.res.total_panel_dense_bytes();
  ASSERT_GT(dense_eq, 0);
  const double ratio =
      static_cast<double>(saved) / static_cast<double>(dense_eq);
  EXPECT_GE(ratio, 0.15) << "panel payload saving " << ratio * 100 << "%";
  EXPECT_LT(plane_totals(rs.res).bytes[0], plane_totals(rd.res).bytes[0]);
}

// ---------------------------------------------------------------------------
// The fig10 bar for the one-sided delivery: on the same K2D5pt-class
// problem, targeted footprint puts must save strictly more panel bytes than
// the sparse-packed broadcasts — the broadcast tree pays every edge with
// the full packed panel plus a presence frame, while a put carries only
// what its one receiver reads and skips empty receivers entirely. The same
// ordering must hold for the Z plane (scatter-accumulate vs framed chunks).
// ---------------------------------------------------------------------------

TEST(CommEquivalence, Fig10ClassTargetedBeatsSparseSavings) {
  const GridGeometry g{64, 64, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 32});
  const Problem p{BlockStructure(A, tree), A.permuted_symmetric(tree.perm())};

  Knobs sparse = kBaseline;
  sparse.name = "allsparse";
  sparse.async = true;
  sparse.panel = pipeline::PanelPacking::Sparse;
  sparse.zred = pipeline::ZRedPacking::Sparse;
  Knobs targeted = sparse;
  targeted.name = "alltargeted";
  targeted.panel = pipeline::PanelPacking::Targeted;
  targeted.zred = pipeline::ZRedPacking::Targeted;

  const LuRun rs = run_lu(p, 2, 2, 4, sparse);
  const LuRun rt = run_lu(p, 2, 2, 4, targeted);
  expect_factors_equal(rs.F, rt.F);

  // Identical dense-equivalent baseline, strictly more of it eliminated.
  EXPECT_EQ(rt.res.total_panel_dense_bytes(), rs.res.total_panel_dense_bytes());
  EXPECT_GT(rt.res.total_panel_saved_bytes(), rs.res.total_panel_saved_bytes());
  EXPECT_GT(rt.res.total_zred_bytes_saved(), rs.res.total_zred_bytes_saved());
  EXPECT_LT(plane_totals(rt.res).bytes[0], plane_totals(rs.res).bytes[0]);
  EXPECT_LT(plane_totals(rt.res).bytes[1], plane_totals(rs.res).bytes[1]);
}

// ---------------------------------------------------------------------------
// All-empty-footprint receivers: a problem built so no non-root rank ever
// reads any panel entry. Leaf supernode 0 couples only to the root
// separator (block 2, whose Schur targets all live on supernode 0's own
// process row), and leaf supernode 1 is an isolated island with an empty
// panel. Under Targeted the data root therefore posts *zero* puts — the
// entire dense-equivalent panel payload is saved, byte for byte and
// message for message — while the factors still match the dense run.
// ---------------------------------------------------------------------------

Problem empty_footprint_problem() {
  // Vertices {0,1} = leaf snode 0, {2,3} = island leaf snode 1,
  // {4,5} = root separator snode 2. Couplings: 0-4, 1-5, 2-3 only.
  const index_t n = 6;
  CooMatrix coo(n, n);
  auto pair = [&](index_t u, index_t v) {
    coo.add(u, v, -1.0);
    coo.add(v, u, -1.0);
  };
  pair(0, 4);
  pair(1, 5);
  pair(2, 3);
  for (index_t i = 0; i < n; ++i) coo.add(i, i, 4.0);
  const CsrMatrix A = CsrMatrix::from_coo(coo);

  std::vector<index_t> perm(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  std::vector<SepTreeNode> nodes(3);
  nodes[0] = {.subtree_first = 0, .sep_first = 0, .sep_last = 2, .parent = 2};
  nodes[1] = {.subtree_first = 2, .sep_first = 2, .sep_last = 4, .parent = 2};
  nodes[2] = {.subtree_first = 0,
              .sep_first = 4,
              .sep_last = 6,
              .left = 0,
              .right = 1,
              .parent = -1};
  const SeparatorTree tree(std::move(perm), std::move(nodes), /*root=*/2);
  return {BlockStructure(A, tree), A.permuted_symmetric(tree.perm())};
}

TEST(CommEquivalence, TargetedAllEmptyFootprintsSendNoPanelData) {
  const Problem p = empty_footprint_problem();
  Knobs dense = kBaseline;
  dense.name = "dense";
  Knobs targeted = dense;
  targeted.name = "targeted";
  targeted.panel = pipeline::PanelPacking::Targeted;

  // Px = 1, Py = 2: the lone non-root row peer never owns a Schur target
  // fed by any panel entry, so every footprint is empty.
  const LuRun rd = run_lu(p, 1, 2, 1, dense);
  const LuRun rt = run_lu(p, 1, 2, 1, targeted);
  expect_factors_equal(rd.F, rt.F);

  // Every dense-equivalent panel byte and message vanished from the wire.
  EXPECT_GT(rt.res.total_panel_dense_bytes(), 0);
  EXPECT_EQ(rt.res.total_panel_saved_bytes(),
            rt.res.total_panel_dense_bytes());
  EXPECT_GT(rt.res.total_panel_saved_msgs(), 0);
  EXPECT_EQ(plane_totals(rt.res).bytes[0] + rt.res.total_panel_saved_bytes(),
            plane_totals(rd.res).bytes[0]);
  EXPECT_EQ(plane_totals(rt.res).msgs[0] + rt.res.total_panel_saved_msgs(),
            plane_totals(rd.res).msgs[0]);

  const CholRun cd = run_chol(p, 1, 2, 1, dense);
  const CholRun ct = run_chol(p, 1, 2, 1, targeted);
  expect_factors_equal(cd.F, ct.F);
  EXPECT_EQ(ct.res.total_panel_saved_bytes(),
            ct.res.total_panel_dense_bytes());
  EXPECT_EQ(plane_totals(ct.res).msgs[0] + ct.res.total_panel_saved_msgs(),
            plane_totals(cd.res).msgs[0]);
}

// ---------------------------------------------------------------------------
// Slot-pool validation: a lookahead beyond the stash pool bound is rejected
// up front, at the shared validation point and through the 3D drivers.
// ---------------------------------------------------------------------------

TEST(PanelOptionsValidation, LookaheadBeyondSlotPoolBoundRejected) {
  pipeline::PanelOptions po;
  po.lookahead = pipeline::kMaxPanelLookahead;
  EXPECT_NO_THROW(pipeline::validate_panel_options(po));
  po.lookahead = pipeline::kMaxPanelLookahead + 1;
  EXPECT_THROW(pipeline::validate_panel_options(po), Error);

  const GridGeometry g{8, 8, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 8});
  const Problem p{BlockStructure(A, tree), A.permuted_symmetric(tree.perm())};
  Knobs k = kBaseline;
  k.lookahead = pipeline::kMaxPanelLookahead + 1;
  EXPECT_THROW(run_lu(p, 2, 2, 1, k), Error);
  EXPECT_THROW(run_chol(p, 2, 2, 1, k), Error);
}

}  // namespace
}  // namespace slu3d
