#include <gtest/gtest.h>

#include <cmath>

#include "numeric/condition.hpp"
#include "numeric/seq_lu.hpp"
#include "numeric/solver.hpp"
#include "order/nested_dissection.hpp"
#include "sparse/generators.hpp"
#include "support/rng.hpp"

namespace slu3d {
namespace {

TEST(Norm1, MaxAbsColumnSum) {
  CooMatrix coo(3, 3);
  coo.add(0, 0, 1);
  coo.add(1, 0, -2);
  coo.add(2, 1, 4);
  coo.add(0, 2, -1);
  const CsrMatrix A = CsrMatrix::from_coo(coo);
  EXPECT_DOUBLE_EQ(norm1(A), 4.0);  // column 1
}

TEST(TransposeSolve, MatchesTransposedSystem) {
  const GridGeometry g{7, 9, 1};
  const CsrMatrix A = grid2d_convection_diffusion(g, 0.6);
  const CsrMatrix At = A.transposed();
  const SparseLuSolver solver(A);

  const auto n = static_cast<std::size_t>(A.n_rows());
  Rng rng(61);
  std::vector<real_t> xref(n), b(n), x(n);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  At.spmv(xref, b);  // b = Aᵀ xref
  solver.solve_transpose(b, x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-9);
}

TEST(TransposeSolve, WorksWithPreprocessing) {
  // Shuffled rows + scaling: the transpose transforms must invert exactly.
  const GridGeometry g{8, 8, 1};
  const CsrMatrix A0 = grid2d_convection_diffusion(g, 0.3);
  std::vector<index_t> shuffle(static_cast<std::size_t>(A0.n_rows()));
  for (std::size_t i = 0; i < shuffle.size(); ++i)
    shuffle[i] = static_cast<index_t>((i + 9) % shuffle.size());
  CooMatrix coo(A0.n_rows(), A0.n_cols());
  for (index_t r = 0; r < A0.n_rows(); ++r) {
    const auto cols = A0.row_cols(shuffle[static_cast<std::size_t>(r)]);
    const auto vals = A0.row_vals(shuffle[static_cast<std::size_t>(r)]);
    for (std::size_t k = 0; k < cols.size(); ++k) coo.add(r, cols[k], vals[k]);
  }
  const CsrMatrix A = CsrMatrix::from_coo(coo);

  SolverOptions opt;
  opt.equilibrate = true;
  const SparseLuSolver solver(A, opt);
  const CsrMatrix At = A.transposed();
  const auto n = static_cast<std::size_t>(A.n_rows());
  Rng rng(67);
  std::vector<real_t> xref(n), b(n), x(n);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  At.spmv(xref, b);
  solver.solve_transpose(b, x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-8);
}

TEST(ConditionEstimate, ExactForDiagonalMatrix) {
  // kappa_1(diag(d)) = max|d| / min|d|, and Hager is exact here.
  CooMatrix coo(4, 4);
  coo.add(0, 0, 10.0);
  coo.add(1, 1, -2.0);
  coo.add(2, 2, 0.5);
  coo.add(3, 3, 5.0);
  const CsrMatrix A = CsrMatrix::from_coo(coo);
  const SparseLuSolver solver(A);
  EXPECT_NEAR(solver.estimate_condition_number(), 10.0 / 0.5, 1e-10);
}

TEST(ConditionEstimate, LowerBoundsAndApproximatesDenseTruth) {
  const GridGeometry g{6, 6, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SparseLuSolver solver(A);
  // Exact ||A^{-1}||_1 by solving for every unit vector.
  const auto n = static_cast<std::size_t>(A.n_rows());
  real_t exact_inv = 0;
  std::vector<real_t> e(n), col(n);
  for (std::size_t j = 0; j < n; ++j) {
    std::fill(e.begin(), e.end(), 0.0);
    e[j] = 1.0;
    solver.solve(e, col);
    real_t s = 0;
    for (real_t v : col) s += std::abs(v);
    exact_inv = std::max(exact_inv, s);
  }
  const real_t exact = exact_inv * norm1(A);
  const real_t est = solver.estimate_condition_number();
  EXPECT_LE(est, exact * (1 + 1e-8));  // Hager never overestimates
  EXPECT_GE(est, 0.3 * exact);         // and is usually within a small factor
}

TEST(ConditionEstimate, GrowsWithIllConditioning) {
  // Same grid, shrinking diagonal boost: the matrix approaches the
  // singular graph Laplacian and the estimate must blow up accordingly.
  // (The solver keeps a reference to A, so the matrices must outlive it.)
  const GridGeometry g{16, 16, 1};
  const CsrMatrix Agood =
      grid2d_laplacian(g, Stencil2D::FivePoint, /*diag_boost=*/0.5);
  const CsrMatrix Abad =
      grid2d_laplacian(g, Stencil2D::FivePoint, /*diag_boost=*/1e-5);
  const SparseLuSolver s_good(Agood);
  const SparseLuSolver s_bad(Abad);
  EXPECT_GT(s_bad.estimate_condition_number(),
            10.0 * s_good.estimate_condition_number());
}

}  // namespace
}  // namespace slu3d
