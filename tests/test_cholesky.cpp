#include <gtest/gtest.h>

#include <cmath>

#include "numeric/cholesky.hpp"
#include "numeric/dense_kernels.hpp"
#include "order/nested_dissection.hpp"
#include "sparse/generators.hpp"
#include "support/rng.hpp"

namespace slu3d {
namespace {

TEST(PotrfLower, ReconstructsSpdMatrix) {
  const index_t n = 37;
  Rng rng(3);
  std::vector<real_t> a(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (auto& v : a) v = rng.uniform(-1, 1);
  // Symmetrize and make SPD.
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < j; ++i)
      a[static_cast<std::size_t>(i + j * n)] = a[static_cast<std::size_t>(j + i * n)];
  for (index_t i = 0; i < n; ++i)
    a[static_cast<std::size_t>(i + i * n)] += static_cast<real_t>(n);
  const auto a0 = a;
  dense::potrf_lower(n, a.data(), n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j <= i; ++j) {
      real_t acc = 0;
      for (index_t k = 0; k <= j; ++k)
        acc += a[static_cast<std::size_t>(i + k * n)] *
               a[static_cast<std::size_t>(j + k * n)];
      EXPECT_NEAR(acc, a0[static_cast<std::size_t>(i + j * n)], 1e-10);
    }
}

TEST(PotrfLower, ThrowsOnIndefinite) {
  std::vector<real_t> a{1.0, 2.0, 2.0, 1.0};  // eigenvalues 3, -1
  EXPECT_THROW(dense::potrf_lower(2, a.data(), 2), Error);
}

TEST(TrsmRightLowerTrans, SolvesAgainstReference) {
  const index_t n = 13, m = 7;
  Rng rng(5);
  std::vector<real_t> a(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i)
      a[static_cast<std::size_t>(i + j * n)] = i == j ? rng.uniform(1, 2) : rng.uniform(-1, 1);
  std::vector<real_t> b(static_cast<std::size_t>(m) * static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1, 1);
  auto x = b;
  dense::trsm_right_lower_trans(n, m, a.data(), n, x.data(), m);
  // Check X L^T == B: (X L^T)(i, j) = sum_{k <= j} X(i, k) L(j, k).
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) {
      real_t acc = 0;
      for (index_t k = 0; k <= j; ++k)
        acc += x[static_cast<std::size_t>(i + k * m)] *
               a[static_cast<std::size_t>(j + k * n)];
      EXPECT_NEAR(acc, b[static_cast<std::size_t>(i + j * m)], 1e-10);
    }
}

TEST(GemmMinusNt, MatchesReference) {
  const index_t m = 6, n = 5, k = 4;
  Rng rng(7);
  std::vector<real_t> a(static_cast<std::size_t>(m * k)), b(static_cast<std::size_t>(n * k)),
      c(static_cast<std::size_t>(m * n), 0.5);
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  auto c0 = c;
  dense::gemm_minus_nt(m, n, k, a.data(), m, b.data(), n, c.data(), m);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) {
      real_t acc = 0;
      for (index_t p = 0; p < k; ++p)
        acc += a[static_cast<std::size_t>(i + p * m)] *
               b[static_cast<std::size_t>(j + p * n)];
      EXPECT_NEAR(c[static_cast<std::size_t>(i + j * m)],
                  c0[static_cast<std::size_t>(i + j * m)] - acc, 1e-12);
    }
}

TEST(TrsvLowerVariants, RoundTrip) {
  const index_t n = 21;
  Rng rng(9);
  std::vector<real_t> a(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i)
      a[static_cast<std::size_t>(i + j * n)] = i == j ? rng.uniform(1, 2) : rng.uniform(-0.3, 0.3);
  std::vector<real_t> x(static_cast<std::size_t>(n)), y(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform(-1, 1);
  // y = L L^T x, then solve both ways.
  std::vector<real_t> t(static_cast<std::size_t>(n), 0.0);
  for (index_t i = 0; i < n; ++i) {
    real_t acc = 0;
    for (index_t j = 0; j <= i; ++j) {  // (L^T x)(i)... compute t = L^T x
      (void)j;
    }
    for (index_t k = i; k < n; ++k)
      acc += a[static_cast<std::size_t>(k + i * n)] * x[static_cast<std::size_t>(k)];
    t[static_cast<std::size_t>(i)] = acc;
  }
  for (index_t i = 0; i < n; ++i) {
    real_t acc = 0;
    for (index_t j = 0; j <= i; ++j)
      acc += a[static_cast<std::size_t>(i + j * n)] * t[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(i)] = acc;
  }
  dense::trsv_lower(n, a.data(), n, y.data());
  dense::trsv_lower_trans(n, a.data(), n, y.data());
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], x[static_cast<std::size_t>(i)], 1e-9);
}

class CholeskyOnSpdSuite : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyOnSpdSuite, ReconstructsAndSolves) {
  // SPD members of the generator suite (symmetric values + dominance).
  const auto suite = paper_test_suite(0);
  const auto& t = suite[static_cast<std::size_t>(GetParam())];
  if (!t.A.pattern_is_symmetric()) GTEST_SKIP();
  // Skip value-nonsymmetric / indefinite classes.
  if (t.name == "nlpkkt3d") GTEST_SKIP();

  const SeparatorTree tree = nested_dissection(t.A, {.leaf_size = 8});
  const BlockStructure bs(t.A, tree);
  CholeskyFactors F(bs);
  const CsrMatrix Ap = t.A.permuted_symmetric(tree.perm());
  F.fill_from(Ap);
  factorize_cholesky(F);

  // Spot-check L L^T == Ap on the lower triangle (full check if small).
  if (t.A.n_rows() <= 400) {
    for (index_t i = 0; i < bs.n(); ++i)
      for (index_t j = 0; j <= i; ++j) {
        real_t acc = 0;
        for (index_t k = 0; k <= j; ++k)
          acc += F.l_entry(i, k) * F.l_entry(j, k);
        ASSERT_NEAR(acc, Ap.at(i, j), 1e-9) << t.name;
      }
  }

  // Solve.
  const auto n = static_cast<std::size_t>(t.A.n_rows());
  Rng rng(41);
  std::vector<real_t> xref(n), b(n), x(n);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  t.A.spmv(xref, b);
  const SparseCholeskySolver solver(t.A);
  const auto rep = solver.solve(b, x);
  EXPECT_LT(rep.final_residual_norm, 1e-13) << t.name;
}

INSTANTIATE_TEST_SUITE_P(SuiteMatrices, CholeskyOnSpdSuite,
                         ::testing::Range(0, 10), [](const auto& pi) {
                           return paper_test_suite(0)[static_cast<std::size_t>(pi.param)].name;
                         });

TEST(Cholesky, HalvesStorageVsLu) {
  const GridGeometry g{12, 12, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 16});
  const BlockStructure bs(A, tree);
  const CholeskyFactors F(bs);
  const SupernodalMatrix Lu(bs);
  EXPECT_LT(F.allocated_bytes(), Lu.allocated_bytes() * 2 / 3);
}

TEST(Cholesky, RejectsIndefinite) {
  const GridGeometry g{3, 3, 2};
  const CsrMatrix A = kkt3d(g, 1);  // saddle point: indefinite
  EXPECT_THROW(SparseCholeskySolver{A}, Error);
}

TEST(Cholesky, MatchesLuSolution) {
  const GridGeometry g{4, 4, 4};
  const CsrMatrix A = grid3d_laplacian(g, Stencil3D::SevenPoint);
  const auto n = static_cast<std::size_t>(A.n_rows());
  Rng rng(43);
  std::vector<real_t> b(n), xc(n), xl(n);
  for (auto& v : b) v = rng.uniform(-1, 1);
  SparseCholeskySolver chol(A);
  SparseLuSolver lu(A);
  chol.solve(b, xc);
  lu.solve(b, xl);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(xc[i], xl[i], 1e-10);
}

}  // namespace
}  // namespace slu3d
