// Parameterized comparison of the blocked dense substrate against the
// dense::ref oracle (the original triple-loop kernels): non-square shapes,
// leading dimensions larger than the row count, degenerate k = 0, sizes
// that are not multiples of any blocking parameter, and the transposed-B
// variant. Tolerances are tight (~1e-12 scaled) because blocked and
// reference kernels perform the same flops in different orders.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <tuple>
#include <vector>

#include "numeric/dense_kernels.hpp"
#include "support/rng.hpp"

namespace slu3d {
namespace {

std::vector<real_t> random_matrix(index_t rows, index_t cols, index_t ld,
                                  Rng& rng) {
  std::vector<real_t> a(static_cast<std::size_t>(ld) * static_cast<std::size_t>(cols),
                        -7.0);  // poison the ld > rows gap
  for (index_t j = 0; j < cols; ++j)
    for (index_t i = 0; i < rows; ++i)
      a[static_cast<std::size_t>(i) +
        static_cast<std::size_t>(j) * static_cast<std::size_t>(ld)] =
          rng.uniform(-1, 1);
  return a;
}

/// Diagonally dominant n x n matrix stored with leading dimension ld.
std::vector<real_t> random_dominant(index_t n, index_t ld, Rng& rng) {
  auto a = random_matrix(n, n, ld, rng);
  for (index_t i = 0; i < n; ++i)
    a[static_cast<std::size_t>(i) * (static_cast<std::size_t>(ld) + 1)] +=
        static_cast<real_t>(n) + 1.0;
  return a;
}

/// Tolerance is relative for large entries (triangular solves of random
/// unit-lower systems grow exponentially with n) and absolute near zero.
void expect_matrices_near(const std::vector<real_t>& got,
                          const std::vector<real_t>& want, index_t rows,
                          index_t cols, index_t ld, real_t tol) {
  for (index_t j = 0; j < cols; ++j)
    for (index_t i = 0; i < rows; ++i) {
      const auto idx = static_cast<std::size_t>(i) +
                       static_cast<std::size_t>(j) * static_cast<std::size_t>(ld);
      ASSERT_NEAR(got[idx], want[idx], tol * (1.0 + std::abs(want[idx])))
          << "mismatch at (" << i << ", " << j << ")";
    }
}

// ---- GEMM: blocked vs reference over awkward shapes ---------------------

// (m, n, k, extra leading-dimension padding for A/B/C)
using GemmShape = std::tuple<index_t, index_t, index_t, index_t>;

class GemmBlockedVsRef : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmBlockedVsRef, NormalVariantMatches) {
  const auto [m, n, k, pad] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 131 + n * 17 + k + pad));
  const index_t lda = m + pad, ldb = k + pad, ldc = m + pad;
  const auto a = random_matrix(m, k, lda, rng);
  const auto b = random_matrix(k, n, ldb, rng);
  const auto c0 = random_matrix(m, n, ldc, rng);

  auto c_blocked = c0;
  dense::gemm_minus(m, n, k, a.data(), lda, b.data(), ldb, c_blocked.data(),
                    ldc);
  auto c_ref = c0;
  dense::ref::gemm_minus(m, n, k, a.data(), lda, b.data(), ldb, c_ref.data(),
                         ldc);
  const real_t tol = 1e-12 * static_cast<real_t>(k > 0 ? k : 1);
  expect_matrices_near(c_blocked, c_ref, m, n, ldc, tol);
}

TEST_P(GemmBlockedVsRef, TransposedVariantMatches) {
  const auto [m, n, k, pad] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 29 + n * 313 + k + pad) + 1);
  const index_t lda = m + pad, ldb = n + pad, ldc = m + pad;
  const auto a = random_matrix(m, k, lda, rng);
  const auto b = random_matrix(n, k, ldb, rng);  // op(B) = B^T is k x n
  const auto c0 = random_matrix(m, n, ldc, rng);

  auto c_blocked = c0;
  dense::gemm_minus_nt(m, n, k, a.data(), lda, b.data(), ldb, c_blocked.data(),
                       ldc);
  auto c_ref = c0;
  dense::ref::gemm_minus_nt(m, n, k, a.data(), lda, b.data(), ldb,
                            c_ref.data(), ldc);
  const real_t tol = 1e-12 * static_cast<real_t>(k > 0 ? k : 1);
  expect_matrices_near(c_blocked, c_ref, m, n, ldc, tol);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmBlockedVsRef,
    ::testing::Values(
        GemmShape{1, 1, 1, 0},      // scalar
        GemmShape{5, 3, 4, 0},      // tiny non-square
        GemmShape{8, 6, 16, 0},     // exactly one micro-tile
        GemmShape{9, 7, 17, 3},     // one past the micro-tile, padded lds
        GemmShape{64, 48, 64, 0},   // multiple micro-tiles, within one block
        GemmShape{130, 70, 33, 5},  // crosses kMC with ragged edges
        GemmShape{33, 129, 40, 0},  // wide: n past a tile boundary
        GemmShape{40, 40, 0, 0},    // k = 0 must be a no-op
        GemmShape{300, 20, 270, 2},  // k crosses kKC, m crosses kMC
        GemmShape{20, 550, 12, 0})); // n crosses kNC

// ---- factorizations and TRSMs vs reference ------------------------------

class FactorBlockedVsRef : public ::testing::TestWithParam<index_t> {};

TEST_P(FactorBlockedVsRef, GetrfMatches) {
  const index_t n = GetParam();
  const index_t lda = n + 3;
  Rng rng(static_cast<std::uint64_t>(n) * 101 + 5);
  const auto a0 = random_dominant(n, lda, rng);
  auto a_blocked = a0;
  dense::getrf_nopiv(n, a_blocked.data(), lda);
  auto a_ref = a0;
  dense::ref::getrf_nopiv(n, a_ref.data(), lda);
  expect_matrices_near(a_blocked, a_ref, n, n, lda,
                       1e-11 * static_cast<real_t>(n));
}

TEST_P(FactorBlockedVsRef, PotrfMatchesAndLeavesUpperUntouched) {
  const index_t n = GetParam();
  const index_t lda = n + 3;
  Rng rng(static_cast<std::uint64_t>(n) * 103 + 7);
  // SPD matrix: dominant symmetrized square.
  auto a0 = random_dominant(n, lda, rng);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < j; ++i) {
      const auto lo = static_cast<std::size_t>(j) +
                      static_cast<std::size_t>(i) * static_cast<std::size_t>(lda);
      const auto up = static_cast<std::size_t>(i) +
                      static_cast<std::size_t>(j) * static_cast<std::size_t>(lda);
      a0[lo] = a0[up];
    }
  auto a_blocked = a0;
  dense::potrf_lower(n, a_blocked.data(), lda);
  auto a_ref = a0;
  dense::ref::potrf_lower(n, a_ref.data(), lda);
  expect_matrices_near(a_blocked, a_ref, n, n, lda,
                       1e-11 * static_cast<real_t>(n));
  // The strict upper triangle must be bit-identical to the input.
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < j; ++i) {
      const auto up = static_cast<std::size_t>(i) +
                      static_cast<std::size_t>(j) * static_cast<std::size_t>(lda);
      ASSERT_EQ(a_blocked[up], a0[up]) << "upper (" << i << ", " << j << ")";
    }
}

TEST_P(FactorBlockedVsRef, TrsmVariantsMatch) {
  const index_t n = GetParam();
  const index_t m = n / 2 + 5;  // non-square right-hand sides
  Rng rng(static_cast<std::uint64_t>(n) * 107 + 11);
  const index_t lda = n + 2;
  const auto a = random_dominant(n, lda, rng);

  {  // left lower unit: B is n x m
    const index_t ldb = n + 4;
    const auto b0 = random_matrix(n, m, ldb, rng);
    auto b_blocked = b0;
    dense::trsm_left_lower_unit(n, m, a.data(), lda, b_blocked.data(), ldb);
    auto b_ref = b0;
    dense::ref::trsm_left_lower_unit(n, m, a.data(), lda, b_ref.data(), ldb);
    expect_matrices_near(b_blocked, b_ref, n, m, ldb,
                         1e-11 * static_cast<real_t>(n));
  }
  {  // right upper: B is m x n
    const index_t ldb = m + 4;
    const auto b0 = random_matrix(m, n, ldb, rng);
    auto b_blocked = b0;
    dense::trsm_right_upper(n, m, a.data(), lda, b_blocked.data(), ldb);
    auto b_ref = b0;
    dense::ref::trsm_right_upper(n, m, a.data(), lda, b_ref.data(), ldb);
    expect_matrices_near(b_blocked, b_ref, m, n, ldb,
                         1e-11 * static_cast<real_t>(n));
  }
  {  // right lower transposed: B is m x n
    const index_t ldb = m + 4;
    const auto b0 = random_matrix(m, n, ldb, rng);
    auto b_blocked = b0;
    dense::trsm_right_lower_trans(n, m, a.data(), lda, b_blocked.data(), ldb);
    auto b_ref = b0;
    dense::ref::trsm_right_lower_trans(n, m, a.data(), lda, b_ref.data(), ldb);
    expect_matrices_near(b_blocked, b_ref, m, n, ldb,
                         1e-11 * static_cast<real_t>(n));
  }
}

// Naive per-column oracles for the solve-path left TRSMs (operate on one
// contiguous column of length n).
void trsv_left_upper_ref(index_t n, const real_t* a, index_t lda, real_t* x) {
  for (index_t k = n - 1; k >= 0; --k) {
    real_t v = x[k];
    for (index_t i = k + 1; i < n; ++i)
      v -= a[static_cast<std::size_t>(k) +
             static_cast<std::size_t>(i) * static_cast<std::size_t>(lda)] *
           x[i];
    x[k] = v / a[static_cast<std::size_t>(k) * (static_cast<std::size_t>(lda) + 1)];
  }
}

void trsv_left_lower_ref(index_t n, const real_t* a, index_t lda, real_t* x) {
  for (index_t k = 0; k < n; ++k) {
    real_t v = x[k];
    for (index_t i = 0; i < k; ++i)
      v -= a[static_cast<std::size_t>(k) +
             static_cast<std::size_t>(i) * static_cast<std::size_t>(lda)] *
           x[i];
    x[k] = v / a[static_cast<std::size_t>(k) * (static_cast<std::size_t>(lda) + 1)];
  }
}

void trsv_left_lower_trans_ref(index_t n, const real_t* a, index_t lda,
                               real_t* x) {
  for (index_t k = n - 1; k >= 0; --k) {
    real_t v = x[k];
    for (index_t i = k + 1; i < n; ++i)
      v -= a[static_cast<std::size_t>(i) +
             static_cast<std::size_t>(k) * static_cast<std::size_t>(lda)] *
           x[i];
    x[k] = v / a[static_cast<std::size_t>(k) * (static_cast<std::size_t>(lda) + 1)];
  }
}

TEST_P(FactorBlockedVsRef, SolvePathLeftTrsmsMatchColumnOracle) {
  const index_t n = GetParam();
  const index_t m = n / 2 + 3;
  Rng rng(static_cast<std::uint64_t>(n) * 109 + 13);
  const index_t lda = n + 2;
  const auto a = random_dominant(n, lda, rng);
  const index_t ldb = n + 4;
  const auto b0 = random_matrix(n, m, ldb, rng);

  using ColumnOracle = void (*)(index_t, const real_t*, index_t, real_t*);
  using PanelKernel = void (*)(index_t, index_t, const real_t*, index_t,
                               real_t*, index_t);
  const std::pair<PanelKernel, ColumnOracle> variants[] = {
      {&dense::trsm_left_upper, &trsv_left_upper_ref},
      {&dense::trsm_left_lower, &trsv_left_lower_ref},
      {&dense::trsm_left_lower_trans, &trsv_left_lower_trans_ref},
  };
  for (const auto& [kernel, oracle] : variants) {
    auto b_panel = b0;
    kernel(n, m, a.data(), lda, b_panel.data(), ldb);
    auto b_ref = b0;
    for (index_t j = 0; j < m; ++j) {
      std::vector<real_t> col(static_cast<std::size_t>(n));
      for (index_t i = 0; i < n; ++i)
        col[static_cast<std::size_t>(i)] =
            b_ref[static_cast<std::size_t>(i) +
                  static_cast<std::size_t>(j) * static_cast<std::size_t>(ldb)];
      oracle(n, a.data(), lda, col.data());
      for (index_t i = 0; i < n; ++i)
        b_ref[static_cast<std::size_t>(i) +
              static_cast<std::size_t>(j) * static_cast<std::size_t>(ldb)] =
            col[static_cast<std::size_t>(i)];
    }
    expect_matrices_near(b_panel, b_ref, n, m, ldb,
                         1e-10 * static_cast<real_t>(n));
  }
}

// Sizes straddle the substrate's blocking parameters: within one
// triangular block (kTB = 64), exactly at it, just past it, past two
// blocks, and past the kKC/kMC cache blocks with a ragged remainder.
INSTANTIATE_TEST_SUITE_P(SweepAcrossBlockBoundaries, FactorBlockedVsRef,
                         ::testing::Values(1, 2, 7, 63, 64, 65, 100, 128, 129,
                                           200, 257));

// ---- flop audit: kernels self-report their model formulas ---------------

TEST(FlopAudit, KernelsReportCanonicalCounts) {
  Rng rng(42);
  const index_t n = 96, m = 40, k = 33;
  const auto a = random_dominant(n, n, rng);
  auto b = random_matrix(n, m, n, rng);
  auto c = random_matrix(n, m, n, rng);

  dense::reset_flops_performed();
  EXPECT_EQ(dense::flops_performed(), 0);

  auto lu = a;
  dense::getrf_nopiv(n, lu.data(), n);
  EXPECT_EQ(dense::flops_performed(), dense::getrf_flops(n));

  dense::reset_flops_performed();
  dense::trsm_left_lower_unit(n, m, lu.data(), n, b.data(), n);
  EXPECT_EQ(dense::flops_performed(), dense::trsm_flops(n, m));

  dense::reset_flops_performed();
  dense::trsm_right_lower_trans(m, n, a.data(), n, c.data(), n);
  EXPECT_EQ(dense::flops_performed(), dense::trsm_flops(m, n));

  dense::reset_flops_performed();
  dense::trsm_left_upper(n, m, lu.data(), n, b.data(), n);
  dense::trsm_left_lower(n, m, lu.data(), n, b.data(), n);
  dense::trsm_left_lower_trans(n, m, lu.data(), n, b.data(), n);
  EXPECT_EQ(dense::flops_performed(), 3 * dense::trsm_flops(n, m));

  dense::reset_flops_performed();
  dense::gemm_minus(m, m, k, a.data(), n, a.data(), n, c.data(), n);
  EXPECT_EQ(dense::flops_performed(), dense::gemm_flops(m, m, k));

  // Degenerate extents must not be charged.
  dense::reset_flops_performed();
  dense::gemm_minus(m, m, 0, a.data(), n, a.data(), n, c.data(), n);
  EXPECT_EQ(dense::flops_performed(), 0);

  auto spd = a;
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < j; ++i)
      spd[static_cast<std::size_t>(j) +
          static_cast<std::size_t>(i) * static_cast<std::size_t>(n)] =
          spd[static_cast<std::size_t>(i) +
              static_cast<std::size_t>(j) * static_cast<std::size_t>(n)];
  dense::reset_flops_performed();
  dense::potrf_lower(n, spd.data(), n);
  EXPECT_EQ(dense::flops_performed(), dense::potrf_flops(n));
}

}  // namespace
}  // namespace slu3d
