#!/usr/bin/env python3
"""Aggregate link-wait stall time from a simulator Chrome trace.

The simulated runtime (with tracing enabled) emits a ``link-wait`` span
whenever an injected transfer queues behind busy network links before it
can start serializing; each span's args name the bottleneck link (see
docs/SIMULATOR.md, "Platform descriptions"). This script turns a trace
JSON — e.g. one written by examples/trace_timeline on a hierarchical
platform — into a per-link congestion table, answering "which wire is
this run actually waiting on?".

Usage:
    tools/trace_links.py /tmp/slu3d_trace.json [--top N]
"""

import argparse
import collections
import json
import sys


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="Chrome trace JSON written by the simulator")
    ap.add_argument("--top", type=int, default=20,
                    help="show at most N links (default 20)")
    args = ap.parse_args()

    with open(args.trace, encoding="utf-8") as f:
        events = json.load(f).get("traceEvents", [])

    # Per-link totals: stall seconds, stalled-transfer count, queued bytes.
    stall_us = collections.defaultdict(float)
    stalls = collections.defaultdict(int)
    stalled_bytes = collections.defaultdict(int)
    total_span_us = 0.0
    for ev in events:
        total_span_us = max(total_span_us, ev.get("ts", 0) + ev.get("dur", 0))
        if ev.get("name") != "link-wait":
            continue
        link = str(ev.get("args", {}).get("link", "?"))
        stall_us[link] += ev.get("dur", 0)
        stalls[link] += 1
        stalled_bytes[link] += ev.get("args", {}).get("bytes", 0)

    if not stall_us:
        print("no link-wait events: the run never queued behind a link "
              "(flat platform, or an uncontended schedule)")
        return 0

    total_stall = sum(stall_us.values())
    print(f"{'link':<18} {'stall(s)':>12} {'share':>7} {'stalls':>7} "
          f"{'queued bytes':>14}")
    ranked = sorted(stall_us.items(), key=lambda kv: kv[1], reverse=True)
    for link, us in ranked[: args.top]:
        print(f"{link:<18} {us / 1e6:>12.3e} {us / total_stall:>6.1%} "
              f"{stalls[link]:>7} {stalled_bytes[link]:>14}")
    if len(ranked) > args.top:
        print(f"... {len(ranked) - args.top} more links elided (--top)")
    print(f"total stall: {total_stall / 1e6:.3e} s across "
          f"{sum(stalls.values())} transfers "
          f"(trace spans {total_span_us / 1e6:.3e} s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
