#!/usr/bin/env python3
"""Plot the paper's figures from the CSV files written by bench/export_csv.

Usage:
    python3 tools/plot_results.py [results_dir] [output_dir]

Requires matplotlib. Produces:
    fig9.png  - normalized factorization time (T_scu + T_comm stacked bars)
    fig10.png - per-process communication volume (W_fact + W_red stacked)
    fig11.png - relative memory overhead vs Pz
    fig12.png - GFLOP/s heatmaps over the P_XY x P_z plane
"""
import csv
import sys
from collections import defaultdict
from pathlib import Path

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:
    sys.exit("matplotlib is required: pip install matplotlib")


def read_csv(path):
    with open(path) as f:
        return list(csv.DictReader(f))


def fig9(rows, out):
    mats = sorted({r["matrix"] for r in rows})
    fig, axes = plt.subplots(2, (len(mats) + 1) // 2,
                             figsize=(3.2 * ((len(mats) + 1) // 2), 7),
                             squeeze=False)
    for i, mat in enumerate(mats):
        ax = axes[i % 2][i // 2]
        sel = [r for r in rows if r["matrix"] == mat and r["P"] == "64"]
        base = next(float(r["time_s"]) for r in sel if r["Pz"] == "1")
        xs = [int(r["Pz"]) for r in sel]
        scu = [float(r["t_scu_s"]) / base for r in sel]
        comm = [float(r["t_comm_s"]) / base for r in sel]
        rest = [float(r["time_s"]) / base - s - c
                for r, s, c in zip(sel, scu, comm)]
        pos = range(len(xs))
        ax.bar(pos, scu, label="T_scu")
        ax.bar(pos, comm, bottom=scu, label="T_comm")
        ax.bar(pos, rest, bottom=[a + b for a, b in zip(scu, comm)],
               label="other")
        ax.set_xticks(list(pos), [str(x) for x in xs])
        ax.set_title(mat, fontsize=9)
        ax.set_xlabel("Pz")
        if i == 0:
            ax.set_ylabel("T / T_2D(P=64)")
            ax.legend(fontsize=7)
    fig.suptitle("Fig. 9 — normalized factorization time (P = 64)")
    fig.tight_layout()
    fig.savefig(out / "fig9.png", dpi=150)


def fig10(rows, out):
    mats = sorted({r["matrix"] for r in rows
                   if r["matrix"] in ("K2D5pt", "nlpkkt3d")})
    fig, axes = plt.subplots(1, len(mats), figsize=(5 * len(mats), 4),
                             squeeze=False)
    for i, mat in enumerate(mats):
        ax = axes[0][i]
        sel = [r for r in rows if r["matrix"] == mat and r["P"] == "64"]
        xs = [int(r["Pz"]) for r in sel]
        wf = [int(r["w_fact_bytes"]) / 1e6 for r in sel]
        wr = [int(r["w_red_bytes"]) / 1e6 for r in sel]
        pos = range(len(xs))
        ax.bar(pos, wf, label="W_fact")
        ax.bar(pos, wr, bottom=wf, label="W_red")
        ax.set_xticks(list(pos), [str(x) for x in xs])
        ax.set_title(mat)
        ax.set_xlabel("Pz")
        ax.set_ylabel("MB / process")
        ax.legend()
    fig.suptitle("Fig. 10 — per-process communication volume (P = 64)")
    fig.tight_layout()
    fig.savefig(out / "fig10.png", dpi=150)


def fig11(rows, out):
    fig, ax = plt.subplots(figsize=(7, 4.5))
    by_mat = defaultdict(list)
    for r in rows:
        if r["P"] == "64":
            by_mat[(r["matrix"], r["class"])].append(
                (int(r["Pz"]), int(r["mem_total_bytes"])))
    for (mat, cls), pts in sorted(by_mat.items()):
        pts.sort()
        base = next(m for pz, m in pts if pz == 1)
        xs = [pz for pz, _ in pts if pz > 1]
        ys = [100.0 * (m / base - 1.0) for pz, m in pts if pz > 1]
        ax.plot(xs, ys, marker="o" if cls == "planar" else "s",
                linestyle="-" if cls == "planar" else "--", label=mat)
    ax.set_xscale("log", base=2)
    ax.set_xlabel("Pz")
    ax.set_ylabel("memory overhead vs 2D (%)")
    ax.legend(fontsize=7, ncol=2)
    ax.set_title("Fig. 11 — memory overhead of the 3D algorithm (P = 64)")
    fig.tight_layout()
    fig.savefig(out / "fig11.png", dpi=150)


def fig12(rows, out):
    mats = sorted({r["matrix"] for r in rows})
    fig, axes = plt.subplots(1, len(mats), figsize=(5.5 * len(mats), 4),
                             squeeze=False)
    for i, mat in enumerate(mats):
        ax = axes[0][i]
        sel = [r for r in rows if r["matrix"] == mat]
        pxys = sorted({int(r["Pxy"]) for r in sel})
        pzs = sorted({int(r["Pz"]) for r in sel})
        grid = [[0.0] * len(pxys) for _ in pzs]
        for r in sel:
            grid[pzs.index(int(r["Pz"]))][pxys.index(int(r["Pxy"]))] = \
                float(r["gflops"])
        im = ax.imshow(grid, origin="lower", aspect="auto", cmap="viridis")
        ax.set_xticks(range(len(pxys)), [str(p) for p in pxys])
        ax.set_yticks(range(len(pzs)), [str(p) for p in pzs])
        ax.set_xlabel("P_XY")
        ax.set_ylabel("P_z")
        ax.set_title(f"{mat} (GFLOP/s)")
        fig.colorbar(im, ax=ax)
    fig.suptitle("Fig. 12 — performance heatmap")
    fig.tight_layout()
    fig.savefig(out / "fig12.png", dpi=150)


def main():
    results = Path(sys.argv[1] if len(sys.argv) > 1 else "results")
    out = Path(sys.argv[2] if len(sys.argv) > 2 else results)
    out.mkdir(parents=True, exist_ok=True)
    fig9(read_csv(results / "fig9_normalized_time.csv"), out)
    fig10(read_csv(results / "fig10_comm_volume.csv"), out)
    fig11(read_csv(results / "fig11_memory.csv"), out)
    fig12(read_csv(results / "fig12_heatmap.csv"), out)
    print(f"figures written to {out}")


if __name__ == "__main__":
    main()
