#!/usr/bin/env bash
# Full verification sweep: plain build + tests, then the same suite under
# ASan/UBSan (SLU3D_SANITIZE=ON) and ThreadSanitizer (SLU3D_TSAN=ON). The
# simulated MPI ranks are real threads, so the TSAN run is what certifies
# the non-blocking communication layer (shared mailbox queues, per-rank
# network clocks) free of data races.
#
#   tools/check.sh          # all three configurations
#   tools/check.sh plain    # just the plain build
#   tools/check.sh asan     # just ASan/UBSan
#   tools/check.sh tsan     # just TSAN
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local name="$1" dir="$2"
  shift 2
  echo "==== [$name] configure ===="
  cmake -B "$dir" -S . "$@" >/dev/null
  echo "==== [$name] build ===="
  cmake --build "$dir" -j "$JOBS"
  echo "==== [$name] ctest ===="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

want() { [[ "$1" == all || "$1" == "$2" ]]; }

sel="${1:-all}"
if want "$sel" plain; then
  run_config plain build
fi
if want "$sel" asan; then
  run_config asan build-asan -DSLU3D_SANITIZE=ON -DSLU3D_BUILD_BENCH=OFF \
    -DSLU3D_BUILD_EXAMPLES=OFF
fi
if want "$sel" tsan; then
  # TSAN slows the rank threads ~10x; benches and examples add nothing.
  TSAN_OPTIONS="halt_on_error=1" \
    run_config tsan build-tsan -DSLU3D_TSAN=ON -DSLU3D_BUILD_BENCH=OFF \
    -DSLU3D_BUILD_EXAMPLES=OFF
fi
echo "==== all requested configurations passed ===="
