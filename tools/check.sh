#!/usr/bin/env bash
# Full verification sweep: plain build + tests, then the same suite under
# ASan/UBSan (SLU3D_SANITIZE=ON) and ThreadSanitizer (SLU3D_TSAN=ON). The
# simulated MPI ranks are real threads, so the TSAN run is what certifies
# the non-blocking communication layer (shared mailbox queues, per-rank
# network clocks) free of data races — and, with SLU3D_THREADS forcing a
# compute pool under every rank, the intra-rank work-stealing paths too.
#
# ctest runs with --stop-on-failure, so the sweep fails fast on the first
# failing test of the first failing configuration instead of burning the
# remaining (sanitizer-slowed) legs. Before testing, the presence of the
# load-bearing suites (comm-equivalence, thread pool) is asserted so a
# registration regression cannot silently pass an empty sweep.
#
#   tools/check.sh          # all three configurations
#   tools/check.sh plain    # just the plain build
#   tools/check.sh asan     # just ASan/UBSan
#   tools/check.sh tsan     # just TSAN
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

# Suites that certify the funneled-threading, schedule-equivalence, and
# one-sided (RMA window / targeted delivery) contracts; every
# configuration must actually contain them. The tsan leg thereby drives
# the targeted put/scatter-accumulate paths — mailbox op streams, window
# epochs, per-level staging — under the race detector with a compute
# pool beneath every rank. The Fleet suite rides along so the sharded
# front end (coalesced batch dispatch, cache-warm migration) also runs
# every sanitizer leg with SLU3D_THREADS=4 pools under the shards.
REQUIRED_SUITES=(CommEquivalence ThreadPool Funneled Determinism Rma
                 RandomTargetedDeliveryFuzz Fleet PlatformRuntime
                 DistAnalysis)

require_suites() {
  local dir="$1" list
  list="$(ctest --test-dir "$dir" -N)"
  for suite in "${REQUIRED_SUITES[@]}"; do
    if ! grep -q "$suite" <<<"$list"; then
      echo "error: required test suite '$suite' not registered in $dir" >&2
      exit 1
    fi
  done
}

run_config() {
  local name="$1" dir="$2"
  shift 2
  echo "==== [$name] configure ===="
  cmake -B "$dir" -S . "$@" >/dev/null
  echo "==== [$name] build ===="
  cmake --build "$dir" -j "$JOBS"
  echo "==== [$name] required suites ===="
  require_suites "$dir"
  echo "==== [$name] ctest ===="
  ctest --test-dir "$dir" --output-on-failure --stop-on-failure -j "$JOBS"
}

want() { [[ "$1" == all || "$1" == "$2" ]]; }

sel="${1:-all}"
if want "$sel" plain; then
  run_config plain build
fi
if want "$sel" asan; then
  run_config asan build-asan -DSLU3D_SANITIZE=ON -DSLU3D_BUILD_BENCH=OFF \
    -DSLU3D_BUILD_EXAMPLES=OFF
fi
if want "$sel" tsan; then
  # TSAN slows the rank threads ~10x; benches and examples add nothing.
  # SLU3D_THREADS=4 puts a work-stealing pool under every rank so the
  # fork-join handoffs, the steal path, and the funneled guards are all
  # exercised under the race detector (results are bitwise unchanged).
  TSAN_OPTIONS="halt_on_error=1" SLU3D_THREADS="${SLU3D_THREADS:-4}" \
    run_config tsan build-tsan -DSLU3D_TSAN=ON -DSLU3D_BUILD_BENCH=OFF \
    -DSLU3D_BUILD_EXAMPLES=OFF
fi
echo "==== all requested configurations passed ===="
