// Solve a system from a MatrixMarket file — the path for running the real
// SuiteSparse matrices of the paper's Table III when they are available.
//
//   $ ./mtx_solve path/to/matrix.mtx
//
// The right-hand side is chosen as b = A * 1 so the exact solution is the
// all-ones vector. Prints ordering / symbolic statistics and the solve
// residual. Without an argument, writes a small demo matrix to /tmp and
// round-trips it.
#include <cstdio>
#include <vector>

#include "numeric/solver.hpp"
#include "sparse/generators.hpp"
#include "sparse/matrix_market.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace slu3d;

  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = "/tmp/slu3d_demo.mtx";
    const GridGeometry g{40, 40, 1};
    write_matrix_market_file(path, grid2d_laplacian(g, Stencil2D::FivePoint));
    std::printf("no input given; wrote and solving demo matrix %s\n",
                path.c_str());
  }

  Timer load_timer;
  const CsrMatrix A = read_matrix_market_file(path);
  std::printf("loaded %s: n = %d, nnz = %lld (%.3f s)\n", path.c_str(),
              A.n_rows(), static_cast<long long>(A.nnz()),
              load_timer.seconds());
  if (A.n_rows() != A.n_cols()) {
    std::fprintf(stderr, "matrix must be square\n");
    return 1;
  }

  Timer factor_timer;
  const SparseLuSolver solver(A);
  std::printf("factorized in %.3f s: nnz(L+U) = %lld, flops = %.3e, "
              "supernodes = %d, tree height = %d\n",
              factor_timer.seconds(),
              static_cast<long long>(solver.factor_nnz()),
              static_cast<double>(solver.factor_flops()),
              solver.block_structure().n_snodes(), solver.tree().height());

  const auto n = static_cast<std::size_t>(A.n_rows());
  std::vector<real_t> ones(n, 1.0), b(n), x(n);
  A.spmv(ones, b);
  Timer solve_timer;
  const SolveReport report = solver.solve(b, x);
  std::printf("solved in %.3f s: relative residual = %.2e\n",
              solve_timer.seconds(), report.final_residual_norm);
  return report.final_residual_norm < 1e-8 ? 0 : 1;
}
