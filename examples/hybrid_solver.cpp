// Hybrid direct/iterative solver (the PDSLin pattern): eliminate the
// subdomain interiors with the sparse direct machinery, solve the
// (much smaller, denser) interface Schur-complement system iteratively,
// then back-substitute. This is the standard way to scale direct methods
// past their memory limits.
//
//   $ ./hybrid_solver [grid_side]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "numeric/krylov.hpp"
#include "numeric/schur_complement.hpp"
#include "order/nested_dissection.hpp"
#include "sparse/generators.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace slu3d;
  const index_t side = argc > 1 ? static_cast<index_t>(std::atoi(argv[1])) : 64;

  const GridGeometry g{side, side, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint, 1e-2);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 32});
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  const auto pinv = invert_permutation(tree.perm());

  // Choose the interface = the top two separator levels (everything whose
  // subtree is "most of the matrix"): split so the interface is small.
  index_t split = 0;
  for (int s = 0; s < bs.n_snodes(); ++s) {
    const index_t end = bs.first_col(s) + bs.snode_size(s);
    if (end <= bs.n() - bs.n() / 16) split = end;  // ~6% interface
  }

  SupernodalMatrix F(bs);
  F.fill_from(Ap);
  Timer elim_timer;
  const auto schur = eliminate_leading_block(F, split);
  std::printf("eliminated %zu interior supernodes in %.3f s; interface dim "
              "= %d (%.1f%% of n), nnz(S) = %lld\n",
              schur.eliminated.size(), elim_timer.seconds(),
              schur.interface_dim,
              100.0 * static_cast<double>(schur.interface_dim) /
                  static_cast<double>(bs.n()),
              static_cast<long long>(schur.schur.nnz()));

  // Manufactured system.
  const auto n = static_cast<std::size_t>(A.n_rows());
  Rng rng(7);
  std::vector<real_t> xref(n), b(n), x(n);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  A.spmv(xref, b);
  for (std::size_t i = 0; i < n; ++i)
    x[static_cast<std::size_t>(pinv[i])] = b[i];

  // 1. Interior forward solve; x's trailing entries become the Schur rhs.
  forward_eliminated(F, schur.eliminated, x);

  // 2. Iterative solve on the interface system S x2 = b2'.
  const index_t iface_first = bs.n() - schur.interface_dim;
  std::vector<real_t> b2(x.begin() + iface_first, x.end());
  std::vector<real_t> x2(b2.size(), 0.0);
  Timer cg_timer;
  const auto rep = pcg(schur.schur, b2, x2, identity_preconditioner(),
                       {.max_iterations = 2000, .tolerance = 1e-12});
  std::printf("interface CG: %d iterations, residual %.1e, %.3f s%s\n",
              rep.iterations, rep.relative_residual, cg_timer.seconds(),
              rep.converged ? "" : " (NOT converged)");
  std::copy(x2.begin(), x2.end(), x.begin() + iface_first);

  // 3. Interior back-substitution.
  backward_eliminated(F, schur.eliminated, x);

  real_t err = 0;
  for (std::size_t i = 0; i < n; ++i)
    err = std::max(err,
                   std::abs(x[static_cast<std::size_t>(pinv[i])] - xref[i]));
  std::printf("max |x - x_true| = %.2e\n", err);
  return rep.converged && err < 1e-6 ? 0 : 1;
}
