// Process-grid planner: given a problem size and machine size, use the
// §IV analytical model to recommend a P_XY x P_z configuration — the
// decision a user of the 3D solver has to make before launching a job.
//
//   $ ./grid_planner [n] [P] [planar|nonplanar]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "model/cost_model.hpp"

int main(int argc, char** argv) {
  using namespace slu3d;
  using namespace slu3d::model;

  const double n = argc > 1 ? std::atof(argv[1]) : 1e6;
  const double P = argc > 2 ? std::atof(argv[2]) : 1024;
  const bool planar = argc > 3 ? std::strcmp(argv[3], "nonplanar") != 0 : true;

  const sim::MachineModel machine;
  const double flops = planar ? planar_flops(n) : nonplanar_flops(n);

  std::printf("planning for n = %.3g, P = %.0f, %s problem\n", n, P,
              planar ? "planar" : "non-planar");
  std::printf("%6s %14s %14s %14s %14s\n", "Pz", "M(words)", "W(words)",
              "L(msgs)", "pred time(s)");

  // Recommend the fastest Pz whose memory overhead stays within 2x of the
  // 2D baseline — the paper's "constant factor of memory" regime (§I);
  // larger Pz keeps reducing latency but the replicated top separators
  // blow up per-process memory (§IV-C).
  const double mem2d =
      (planar ? planar_2d_alg(n, P) : nonplanar_2d_alg(n, P)).memory_words;
  double best_time = 1e300;
  int best_pz = 1;
  for (int pz = 1; pz <= static_cast<int>(P) / 4; pz *= 2) {
    const CostEstimate c = planar ? planar_3d_alg(n, P, pz)
                                  : nonplanar_3d_alg(n, P, pz);
    const double t = predicted_seconds(machine, flops, P, c);
    const bool feasible = c.memory_words <= 2.0 * mem2d;
    std::printf("%6d %14.4g %14.4g %14.4g %14.4g%s\n", pz, c.memory_words,
                c.comm_words, c.latency_msgs, t,
                feasible ? "" : "  (exceeds 2x 2D memory)");
    if (feasible && t < best_time) {
      best_time = t;
      best_pz = pz;
    }
  }

  const double opt = planar ? planar_optimal_pz(n) : nonplanar_optimal_pz();
  std::printf("\nrecommended Pz = %d (model-predicted time %.4g s); "
              "communication-optimal continuous Pz = %.2f\n",
              best_pz, best_time, opt);
  const CostEstimate c2d = planar ? planar_2d_alg(n, P) : nonplanar_2d_alg(n, P);
  std::printf("2D baseline predicted time: %.4g s -> modelled speedup %.2fx\n",
              predicted_seconds(machine, flops, P, c2d),
              predicted_seconds(machine, flops, P, c2d) / best_time);
  return 0;
}
