// Quickstart: solve a sparse linear system with the sequential solver API.
//
//   $ ./quickstart
//
// Builds a 2D Poisson problem, factorizes it with nested-dissection
// ordering + supernodal LU, solves against a manufactured solution, and
// prints factor statistics and the final residual.
#include <cstdio>

#include "numeric/solver.hpp"
#include "sparse/generators.hpp"
#include "support/rng.hpp"

int main() {
  using namespace slu3d;

  // 1. Build (or load) a sparse matrix. Here: -Δu = f on a 96x96 grid.
  const GridGeometry geom{96, 96, 1};
  const CsrMatrix A = grid2d_laplacian(geom, Stencil2D::FivePoint);
  std::printf("matrix: n = %d, nnz = %lld\n", A.n_rows(),
              static_cast<long long>(A.nnz()));

  // 2. Factorize. Passing the grid geometry selects exact geometric
  //    nested dissection; omit it for general-graph ordering.
  SolverOptions options;
  options.geometry = geom;
  const SparseLuSolver solver(A, options);
  std::printf("factors: nnz(L+U) = %lld, flops = %lld, tree height = %d\n",
              static_cast<long long>(solver.factor_nnz()),
              static_cast<long long>(solver.factor_flops()),
              solver.tree().height());

  // 3. Solve A x = b for a manufactured solution.
  const auto n = static_cast<std::size_t>(A.n_rows());
  std::vector<real_t> x_true(n), b(n), x(n);
  Rng rng(42);
  for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
  A.spmv(x_true, b);

  const SolveReport report = solver.solve(b, x);

  real_t max_err = 0;
  for (std::size_t i = 0; i < n; ++i)
    max_err = std::max(max_err, std::abs(x[i] - x_true[i]));
  std::printf("solve: relative residual = %.2e, max |x - x_true| = %.2e, "
              "refinement steps = %d\n",
              report.final_residual_norm, max_err, report.refinement_steps_used);
  return report.final_residual_norm < 1e-10 ? 0 : 1;
}
