// The paper's headline scenario: strong-scaling a *planar* problem (2D
// Poisson, the K2D5pt class) with the 3D algorithm. Sweeps P_z for a
// fixed total process count and reports simulated factorization time,
// speedup over the 2D baseline, per-process communication, and memory —
// the Fig. 9 / Fig. 10 story in one runnable program.
//
//   $ ./poisson2d_scaling [grid_side] [total_ranks]
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "lu3d/factor3d.hpp"
#include "order/nested_dissection.hpp"
#include "sparse/generators.hpp"

int main(int argc, char** argv) {
  using namespace slu3d;
  const index_t side = argc > 1 ? static_cast<index_t>(std::atoi(argv[1])) : 96;
  const int P = argc > 2 ? std::atoi(argv[2]) : 64;

  const GridGeometry geom{side, side, 1};
  const CsrMatrix A = grid2d_laplacian(geom, Stencil2D::FivePoint);
  const SeparatorTree tree = geometric_nd(geom, {.leaf_size = 32});
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());

  std::printf("planar Poisson %dx%d (n = %d), P = %d ranks, flops = %.2e\n",
              side, side, A.n_rows(), P,
              static_cast<double>(bs.total_flops()));
  std::printf("%4s %8s %12s %9s %14s %12s\n", "Pz", "PXY", "time(s)",
              "speedup", "W/proc(bytes)", "mem/proc(B)");

  double t2d = 0;
  for (int Pz = 1; Pz <= 16 && Pz * 4 <= P; Pz *= 2) {
    const int pxy = P / Pz;
    int Px = 1;
    for (int d = 1; d * d <= pxy; ++d)
      if (pxy % d == 0) Px = d;
    const int Py = pxy / Px;

    const ForestPartition part(bs, Pz);
    std::vector<offset_t> mem(static_cast<std::size_t>(P), 0);
    const auto res = sim::run_ranks(P, sim::MachineModel{}, [&](sim::Comm& w) {
      auto grid = sim::ProcessGrid3D::create(w, Px, Py, Pz);
      Dist2dFactors F = make_3d_factors(bs, grid, part, Ap);
      mem[static_cast<std::size_t>(w.rank())] = F.allocated_bytes();
      factorize_3d(F, grid, part, {});
    });

    const double t = res.max_clock();
    if (Pz == 1) t2d = t;
    offset_t mem_max = 0;
    for (offset_t m : mem) mem_max = std::max(mem_max, m);
    std::printf("%4d %4dx%-3d %12.3e %8.2fx %14lld %12lld\n", Pz, Px, Py, t,
                t2d / t,
                static_cast<long long>(
                    res.max_bytes_received(sim::CommPlane::XY) +
                    res.max_bytes_received(sim::CommPlane::Z)),
                static_cast<long long>(mem_max));
  }
  return 0;
}
