// Direct-solver-as-preconditioner: factor a simplified operator once with
// the sparse LU machinery, then iterate on the true operator with
// preconditioned Krylov methods. The classic production pattern for
// sequences of related systems (time stepping, Newton iterations).
//
//   $ ./precond_iterative [grid_side]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "numeric/krylov.hpp"
#include "numeric/solver.hpp"
#include "sparse/generators.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace slu3d;
  const index_t side = argc > 1 ? static_cast<index_t>(std::atoi(argv[1])) : 64;

  // True operator: convection-diffusion at the current time step;
  // preconditioner: the factored operator from an earlier step (slightly
  // different convection). Factor once, reuse across steps.
  const GridGeometry g{side, side, 1};
  const CsrMatrix A = grid2d_convection_diffusion(g, 0.60, 1e-3);
  const CsrMatrix M = grid2d_convection_diffusion(g, 0.50, 1e-3);

  Timer factor_timer;
  const SparseLuSolver msolver(M);
  std::printf("preconditioner factored in %.3f s (nnz(L+U) = %lld)\n",
              factor_timer.seconds(),
              static_cast<long long>(msolver.factor_nnz()));

  const auto n = static_cast<std::size_t>(A.n_rows());
  Rng rng(3);
  std::vector<real_t> xref(n), b(n);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  A.spmv(xref, b);

  std::vector<real_t> tmp(n);
  auto precond = [&](std::span<real_t> v) {
    std::copy(v.begin(), v.end(), tmp.begin());
    msolver.solve(tmp, v);
  };

  KrylovOptions opt;
  opt.tolerance = 1e-10;

  std::vector<real_t> x0(n, 0.0), x1(n, 0.0);
  Timer t_plain;
  const auto plain = bicgstab(A, b, x0, identity_preconditioner(), opt);
  const double plain_s = t_plain.seconds();
  Timer t_pre;
  const auto pre = bicgstab(A, b, x1, precond, opt);
  const double pre_s = t_pre.seconds();

  std::printf("BiCGSTAB plain:          %4d iters, residual %.1e, %.3f s%s\n",
              plain.iterations, plain.relative_residual, plain_s,
              plain.converged ? "" : " (NOT converged)");
  std::printf("BiCGSTAB + LU precond:   %4d iters, residual %.1e, %.3f s%s\n",
              pre.iterations, pre.relative_residual, pre_s,
              pre.converged ? "" : " (NOT converged)");

  real_t err = 0;
  for (std::size_t i = 0; i < n; ++i)
    err = std::max(err, std::abs(x1[i] - xref[i]));
  std::printf("max |x - x_true| (preconditioned): %.2e\n", err);
  return pre.converged ? 0 : 1;
}
