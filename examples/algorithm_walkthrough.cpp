// A narrated walkthrough of Algorithm 1 on the paper's running example
// (§III-A / Fig. 5): a 3-block sparse matrix on two process grids. Prints
// the elimination-forest partition, which grid factors what at each
// level, the replicated ancestor blocks, and the ancestor-reduction step,
// then verifies the distributed factors against the sequential ones.
//
//   $ ./algorithm_walkthrough
#include <cstdio>
#include <mutex>

#include "lu3d/factor3d.hpp"
#include "numeric/seq_lu.hpp"
#include "order/nested_dissection.hpp"
#include "sparse/generators.hpp"

int main() {
  using namespace slu3d;

  // The paper's Fig. 1/2 setting: a 2D grid whose top separator splits the
  // domain into two independent halves (blocks 1 and 2) plus the separator
  // (block 3).
  const GridGeometry g{9, 9, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 40});
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());

  std::printf("matrix: 9x9 grid, n = %d; separator tree has %d supernodes\n",
              A.n_rows(), bs.n_snodes());
  for (int s = 0; s < bs.n_snodes(); ++s)
    std::printf("  supernode %d: columns [%d, %d), ND parent %d\n", s,
                bs.first_col(s), bs.first_col(s) + bs.snode_size(s),
                bs.nd_parent(s));

  // Two 2D grids (Pz = 2), each a single rank for clarity: the paper's
  // Fig. 5 "grid-0 / grid-1" setup.
  const ForestPartition part(bs, /*Pz=*/2);
  std::printf("\nelimination-forest partition for Pz = 2:\n");
  for (int lvl = part.n_levels() - 1; lvl >= 0; --lvl) {
    for (int pz = 0; pz < 2; ++pz) {
      const auto nodes = part.nodes_at(pz, lvl);
      if (nodes.empty()) continue;
      std::printf("  level %d, grid %d factors supernodes:", lvl, pz);
      for (int s : nodes) std::printf(" %d", s);
      std::printf("\n");
    }
  }
  for (int s = 0; s < bs.n_snodes(); ++s)
    if (part.group_size(s) > 1)
      std::printf("  supernode %d is REPLICATED on grids [%d, %d) — the "
                  "common ancestor A(S) of Fig. 5\n",
                  s, part.anchor_of(s),
                  part.anchor_of(s) + part.group_size(s));

  std::printf("\nrunning Algorithm 1 on 2 ranks (1x1 grids, Pz = 2)...\n");
  SupernodalMatrix ref(bs);
  ref.fill_from(Ap);
  factorize_sequential(ref);

  SupernodalMatrix gathered(bs);
  std::mutex mu;
  const auto res = sim::run_ranks(2, sim::MachineModel{}, [&](sim::Comm& w) {
    auto grid = sim::ProcessGrid3D::create(w, 1, 1, 2);
    Dist2dFactors F = make_3d_factors(bs, grid, part, Ap);
    factorize_3d(F, grid, part, {});
    auto full = gather_3d_to_root(F, w, grid, part);
    if (full.has_value()) {
      const std::lock_guard<std::mutex> lock(mu);
      gathered = std::move(*full);
    }
  });

  std::printf("  grid-1 sent its copy of A(S) to grid-0: %lld bytes along "
              "z (the one Ancestor-Reduction of Fig. 5)\n",
              static_cast<long long>(
                  res.ranks[1].bytes_sent[static_cast<int>(sim::CommPlane::Z)]));

  real_t max_diff = 0;
  for (index_t i = 0; i < bs.n(); ++i)
    for (index_t j = 0; j <= i; ++j) {
      max_diff = std::max(max_diff, std::abs(gathered.l_entry(i, j) -
                                             ref.l_entry(i, j)));
      max_diff = std::max(max_diff, std::abs(gathered.u_entry(j, i) -
                                             ref.u_entry(j, i)));
    }
  std::printf("  distributed factors match sequential ones to %.1e\n",
              max_diff);
  return max_diff < 1e-10 ? 0 : 1;
}
