// Produces a Chrome-tracing / Perfetto timeline of a distributed 3D
// factorization: load the output JSON at chrome://tracing or
// https://ui.perfetto.dev to see per-rank diag-factor / panel-solve /
// schur-update / send / recv activity on the simulated clocks. On a
// contended platform (e.g. fattree-2to1) link-wait spans show where
// transfers queued and name the bottleneck link; tools/trace_links.py
// aggregates them per link.
//
//   $ ./trace_timeline [out.json] [grid_side] [Pz] [platform]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "lu3d/factor3d.hpp"
#include "order/nested_dissection.hpp"
#include "simmpi/trace.hpp"
#include "sparse/generators.hpp"

int main(int argc, char** argv) {
  using namespace slu3d;
  const std::string out = argc > 1 ? argv[1] : "/tmp/slu3d_trace.json";
  const index_t side = argc > 2 ? static_cast<index_t>(std::atoi(argv[2])) : 48;
  const int Pz = argc > 3 ? std::atoi(argv[3]) : 4;
  const sim::Platform platform =
      argc > 4 ? sim::Platform::load(argv[4]) : sim::Platform::flat();

  const GridGeometry g{side, side, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 32});
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  const ForestPartition part(bs, Pz);

  sim::RunOptions ropt;
  ropt.trace = true;
  const int P = 4 * Pz;
  const auto res = sim::run_ranks(
      P, platform,
      [&](sim::Comm& world) {
        auto grid = sim::ProcessGrid3D::create(world, 2, 2, Pz);
        Dist2dFactors F = make_3d_factors(bs, grid, part, Ap);
        factorize_3d(F, grid, part, {});
      },
      ropt);

  std::ofstream os(out);
  sim::write_chrome_trace(os, res.traces, res.link_names());
  std::size_t events = 0;
  for (const auto& t : res.traces) events += t.size();
  std::printf("wrote %zu events for %d ranks to %s (platform %s)\n", events, P,
              out.c_str(), platform.describe().c_str());
  std::printf("simulated factorization time: %.3e s\n", res.max_clock());
  if (res.total_link_queue_seconds() > 0) {
    std::printf("link queueing: %.3e s total; worst links:\n",
                res.total_link_queue_seconds());
    auto links = res.links;
    std::sort(links.begin(), links.end(),
              [](const sim::LinkUsage& a, const sim::LinkUsage& b) {
                return a.queue_seconds > b.queue_seconds;
              });
    for (std::size_t i = 0; i < links.size() && i < 5; ++i)
      if (links[i].queue_seconds > 0)
        std::printf("  %-14s %.3e s queued over %lld msgs\n",
                    links[i].name.c_str(), links[i].queue_seconds,
                    static_cast<long long>(links[i].messages));
  }
  std::printf("open chrome://tracing or https://ui.perfetto.dev and load it\n");
  return 0;
}
