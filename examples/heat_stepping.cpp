// Implicit time stepping for the heat equation — the canonical "factor
// once, solve many times" application. Backward Euler on a 2D grid:
//   (M + dt*L) u_{k+1} = u_k
// The operator is SPD, so the Cholesky variant factors it once; each time
// step is a pair of triangular solves. Batches of probe vectors use the
// blocked multi-RHS solve.
//
//   $ ./heat_stepping [grid_side] [steps]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "numeric/cholesky.hpp"
#include "numeric/seq_lu.hpp"
#include "sparse/generators.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace slu3d;
  const index_t side = argc > 1 ? static_cast<index_t>(std::atoi(argv[1])) : 96;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 50;

  // I + dt*Laplacian: diag_boost plays the mass-matrix role scaled by dt.
  const GridGeometry g{side, side, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint, /*diag_boost=*/0.25);

  Timer factor_timer;
  const SparseCholeskySolver solver(A);
  std::printf("factored %dx%d heat operator in %.3f s (nnz(L) = %lld)\n", side,
              side, factor_timer.seconds(),
              static_cast<long long>(solver.factor_nnz()));

  // Initial condition: a hot spot in the middle.
  const auto n = static_cast<std::size_t>(A.n_rows());
  std::vector<real_t> u(n, 0.0), next(n);
  u[static_cast<std::size_t>(g.vertex(side / 2, side / 2, 0))] = 1000.0;

  Timer step_timer;
  for (int k = 0; k < steps; ++k) {
    solver.solve(u, next);
    u.swap(next);
  }
  const double step_s = step_timer.seconds();

  real_t total = 0, peak = 0;
  for (real_t v : u) {
    total += v;
    peak = std::max(peak, v);
  }
  std::printf("%d steps in %.3f s (%.2e s/step): peak %.3e, mass %.3e\n",
              steps, step_s, step_s / steps, peak, total);

  // Multi-RHS demonstration: diffuse 8 probe sources in one blocked solve
  // through the LU machinery.
  const index_t nrhs = 8;
  const SolverOptions lopt;
  const SparseLuSolver lu(A, lopt);
  const SeparatorTree& tree = lu.tree();
  const auto pinv = invert_permutation(tree.perm());
  std::vector<real_t> X(n * static_cast<std::size_t>(nrhs), 0.0);
  for (index_t k = 0; k < nrhs; ++k) {
    const index_t spot = g.vertex((k + 1) * side / (nrhs + 1), side / 3, 0);
    X[static_cast<std::size_t>(k) * n +
      static_cast<std::size_t>(pinv[static_cast<std::size_t>(spot)])] = 1.0;
  }
  Timer multi_timer;
  solve_factored_multi(lu.factors(), X, nrhs);
  std::printf("blocked solve of %d probe RHS in %.3f s\n", nrhs,
              multi_timer.seconds());
  return peak > 0 && std::isfinite(total) ? 0 : 1;
}
