// Non-planar scenario: a 3D "structural" finite-element-style problem
// (the Serena / audikw_1 class). Demonstrates the paper's §V finding that
// strongly non-planar matrices gain less from large P_z — and can even
// lose — because the top separators are large: the program factors the
// same system under several P_XY x P_z configurations, verifies the
// distributed factors by solving, and prints the time / communication /
// memory trade-off.
//
//   $ ./structural3d [grid_side]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "lu3d/solve3d.hpp"
#include "numeric/solver.hpp"
#include "order/nested_dissection.hpp"
#include "sparse/generators.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace slu3d;
  const index_t side = argc > 1 ? static_cast<index_t>(std::atoi(argv[1])) : 12;

  const GridGeometry geom{side, side, side};
  const CsrMatrix A = grid3d_laplacian(geom, Stencil3D::SevenPoint);
  const SeparatorTree tree = geometric_nd(geom, {.leaf_size = 32});
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  const auto pinv = invert_permutation(tree.perm());

  std::printf("structural 3D %dx%dx%d (n = %d), non-planar, flops = %.2e\n",
              side, side, side, A.n_rows(),
              static_cast<double>(bs.total_flops()));

  // Manufactured problem for verification.
  const auto n = static_cast<std::size_t>(A.n_rows());
  std::vector<real_t> x_true(n), b(n);
  Rng rng(7);
  for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
  A.spmv(x_true, b);

  struct Config {
    int Px, Py, Pz;
  };
  const std::vector<Config> configs{{8, 8, 1}, {4, 8, 2}, {4, 4, 4}, {2, 4, 8}};

  std::printf("%10s %12s %9s %14s %12s %12s\n", "PXYxPz", "time(s)", "speedup",
              "W/proc(bytes)", "mem/proc(B)", "residual");
  double t2d = 0;
  for (const auto& cfg : configs) {
    const int P = cfg.Px * cfg.Py * cfg.Pz;
    const ForestPartition part(bs, cfg.Pz);
    std::vector<offset_t> mem(static_cast<std::size_t>(P), 0);
    std::vector<real_t> x(n, 0.0);
    std::mutex mu;
    const auto res = sim::run_ranks(P, sim::MachineModel{}, [&](sim::Comm& w) {
      auto grid = sim::ProcessGrid3D::create(w, cfg.Px, cfg.Py, cfg.Pz);
      Dist2dFactors F = make_3d_factors(bs, grid, part, Ap);
      mem[static_cast<std::size_t>(w.rank())] = F.allocated_bytes();
      factorize_3d(F, grid, part, {});
      // Solve directly on the 3D-distributed factors — no gather.
      std::vector<real_t> pb(n);
      for (std::size_t i = 0; i < n; ++i)
        pb[static_cast<std::size_t>(pinv[i])] = b[i];
      solve_3d(F, w, grid, part, pb);
      if (w.rank() == 0) {
        const std::lock_guard<std::mutex> lock(mu);
        for (std::size_t i = 0; i < n; ++i)
          x[i] = pb[static_cast<std::size_t>(pinv[i])];
      }
    });

    const double t = res.max_clock();
    if (cfg.Pz == 1) t2d = t;
    offset_t mem_max = 0;
    for (offset_t m : mem) mem_max = std::max(mem_max, m);
    std::printf("%4dx%d x%-2d %12.3e %8.2fx %14lld %12lld %12.2e\n", cfg.Px,
                cfg.Py, cfg.Pz, t, t2d / t,
                static_cast<long long>(
                    res.max_bytes_received(sim::CommPlane::XY) +
                    res.max_bytes_received(sim::CommPlane::Z)),
                static_cast<long long>(mem_max),
                relative_residual(A, x, b));
  }
  return 0;
}
